#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"

namespace ccsql::sim {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

/// Everything but the wall-clock rate must match (events_per_sec is the one
/// timing-dependent counter field).
void expect_counters_eq(const SimCounters& a, const SimCounters& b) {
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.msgs_recv, b.msgs_recv);
  EXPECT_EQ(a.table_hits, b.table_hits);
  EXPECT_EQ(a.table_misses, b.table_misses);
  EXPECT_EQ(a.send_stalls, b.send_stalls);
  EXPECT_EQ(a.ops_injected, b.ops_injected);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.mem_cycles, b.mem_cycles);
  EXPECT_EQ(a.bus_cycles, b.bus_cycles);
  EXPECT_EQ(a.c2c_cycles, b.c2c_cycles);
  EXPECT_EQ(a.per_vc_sent, b.per_vc_sent);
}

void expect_result_eq(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
  EXPECT_EQ(a.stalled, b.stalled);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.transactions_done, b.transactions_done);
  EXPECT_EQ(a.errors, b.errors);
  expect_counters_eq(a.counters, b.counters);
}

/// A small but non-trivial grid: two topologies, every workload shape, two
/// seeds — enough cells that a racy slot write or out-of-order merge would
/// show up, small enough for test time.
std::vector<SweepRun> small_grid() {
  std::vector<SweepRun> grid;
  const Workload shapes[] = {Workload::kRandom, Workload::kLock,
                             Workload::kProducerConsumer,
                             Workload::kFalseSharing, Workload::kStreaming};
  for (int quads : {2, 4}) {
    for (Workload wl : shapes) {
      for (unsigned seed : {1u, 7u}) {
        SweepRun cell;
        cell.config.n_quads = quads;
        cell.config.n_addrs = quads * 2;
        cell.config.channel_capacity = 2;
        cell.config.transactions_per_node = 25;
        cell.config.workload = wl;
        cell.config.seed = seed;
        cell.assignment = asura::kAssignV5Fix;
        cell.memory_latency = 2;
        grid.push_back(std::move(cell));
      }
    }
  }
  return grid;
}

/// The determinism contract: the merged counters and every per-run result
/// are byte-identical at any job count.
TEST(Sweep, DeterministicAcrossJobCounts) {
  const SweepEngine engine(spec());
  const auto grid = small_grid();
  const SweepResult j1 = engine.run(grid, 1);
  const SweepResult j4 = engine.run(grid, 4);
  const SweepResult j8 = engine.run(grid, 8);

  EXPECT_TRUE(j1.all_healthy());
  ASSERT_EQ(j1.runs.size(), grid.size());
  ASSERT_EQ(j4.runs.size(), grid.size());
  ASSERT_EQ(j8.runs.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(grid[i].label());
    expect_result_eq(j1.runs[i], j4.runs[i]);
    expect_result_eq(j1.runs[i], j8.runs[i]);
  }
  expect_counters_eq(j1.merged, j4.merged);
  expect_counters_eq(j1.merged, j8.merged);
  EXPECT_EQ(j1.events, j4.events);
  EXPECT_EQ(j1.events, j8.events);
  EXPECT_EQ(j1.completed, j4.completed);
  // Merged counters follow the operator+= contract: the rate is zeroed and
  // recomputed at sweep level.
  EXPECT_EQ(j1.merged.events_per_sec, 0u);
  EXPECT_EQ(j1.events, j1.merged.events());
}

/// A parallel sweep must agree with the obvious sequential oracle: build
/// each cell's Machine by hand in grid order, run it, and fold counters
/// with SimCounters::operator+=.
TEST(Sweep, MatchesSequentialOracle) {
  const SweepEngine engine(spec());
  const auto grid = small_grid();
  const SweepResult swept = engine.run(grid, 4);

  auto tables = CompiledTables::compile(spec(), ControllerDispatch::Mode::kDense);
  SimCounters oracle_merged;
  std::uint64_t oracle_events = 0;
  ASSERT_EQ(swept.runs.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(grid[i].label());
    const SweepRun& cell = grid[i];
    Machine m(spec(), spec().assignment(cell.assignment), cell.config, tables);
    m.set_memory_latency(cell.memory_latency);
    m.enable_workload();
    const SimResult r = m.run();
    expect_result_eq(swept.runs[i], r);
    oracle_merged += r.counters;
    oracle_events += r.counters.events();
  }
  expect_counters_eq(swept.merged, oracle_merged);
  EXPECT_EQ(swept.events, oracle_events);
}

/// A wedged cell (here: a stall forced by an impossible step budget) must
/// flip all_healthy() — the sweep tool's non-zero exit criterion — while
/// the healthy cells still complete.
TEST(Sweep, UnhealthyCellFailsTheSweep) {
  const SweepEngine engine(spec());
  std::vector<SweepRun> grid = small_grid();
  grid.resize(3);
  grid[1].config.max_steps = 10;  // cannot finish 25 txns/node in 10 steps
  const SweepResult r = engine.run(grid, 2);
  EXPECT_FALSE(r.all_healthy());
  EXPECT_EQ(r.stalled, 1);
  EXPECT_EQ(r.deadlocked, 0);
  EXPECT_EQ(r.completed, 2);
  EXPECT_TRUE(r.runs[0].healthy());
  EXPECT_TRUE(r.runs[1].stalled);
  EXPECT_TRUE(r.runs[2].healthy());
}

/// Hashed-dispatch cells run through the same engine (private TableIndex
/// per cell) and agree with their dense twins — the sweep-level face of the
/// dispatch differential.
TEST(Sweep, HashedCellsAgreeWithDense) {
  const SweepEngine engine(spec());
  std::vector<SweepRun> grid;
  for (bool dense : {true, false}) {
    SweepRun cell;
    cell.config.n_quads = 3;
    cell.config.n_addrs = 6;
    cell.config.channel_capacity = 2;
    cell.config.transactions_per_node = 25;
    cell.config.seed = 7;
    cell.config.dense_dispatch = dense;
    cell.assignment = asura::kAssignV5Fix;
    cell.memory_latency = 2;
    grid.push_back(std::move(cell));
  }
  const SweepResult r = engine.run(grid, 2);
  EXPECT_TRUE(r.all_healthy());
  expect_result_eq(r.runs[0], r.runs[1]);
}

TEST(Sweep, DefaultGridShape) {
  const auto grid = default_sweep_grid(asura::kAssignV5Fix, 2);
  // quads {2,3,4} x cap {1,2,4} x 5 workloads x 2 seeds
  EXPECT_EQ(grid.size(), 3u * 3u * 5u * 2u);
  for (const auto& cell : grid) {
    EXPECT_EQ(cell.assignment, asura::kAssignV5Fix);
    EXPECT_FALSE(cell.label().empty());
  }
}

}  // namespace
}  // namespace ccsql::sim
