#include <gtest/gtest.h>

#include "sim/types.hpp"

namespace ccsql::sim {
namespace {

Value vc(const char* name) { return Symbol::intern(name); }

TEST(SimCounters, MergeSumsAdditiveFields) {
  SimCounters a;
  a.msgs_sent = 10;
  a.msgs_recv = 9;
  a.table_hits = 8;
  a.table_misses = 1;
  a.send_stalls = 2;
  a.ops_injected = 5;
  a.cache_hits = 3;
  a.cycles = 120;
  a.mem_cycles = 100;
  a.bus_cycles = 20;
  a.c2c_cycles = 0;
  a.per_vc_sent[vc("VC0")] = 4;
  a.per_vc_sent[Value{}] = 6;

  SimCounters b;
  b.msgs_sent = 1;
  b.msgs_recv = 2;
  b.table_hits = 3;
  b.table_misses = 4;
  b.send_stalls = 5;
  b.ops_injected = 6;
  b.cache_hits = 7;
  b.cycles = 8;
  b.mem_cycles = 1;
  b.bus_cycles = 2;
  b.c2c_cycles = 5;
  b.per_vc_sent[vc("VC0")] = 1;
  b.per_vc_sent[vc("VC2")] = 9;

  a += b;
  EXPECT_EQ(a.msgs_sent, 11u);
  EXPECT_EQ(a.msgs_recv, 11u);
  EXPECT_EQ(a.table_hits, 11u);
  EXPECT_EQ(a.table_misses, 5u);
  EXPECT_EQ(a.send_stalls, 7u);
  EXPECT_EQ(a.ops_injected, 11u);
  EXPECT_EQ(a.cache_hits, 10u);
  EXPECT_EQ(a.cycles, 128u);
  EXPECT_EQ(a.mem_cycles, 101u);
  EXPECT_EQ(a.bus_cycles, 22u);
  EXPECT_EQ(a.c2c_cycles, 5u);
  EXPECT_EQ(a.per_vc_sent[vc("VC0")], 5u);
  EXPECT_EQ(a.per_vc_sent[vc("VC2")], 9u);
  EXPECT_EQ(a.per_vc_sent[Value{}], 6u);
  EXPECT_EQ(a.events(), 33u);
}

TEST(SimCounters, MergeZeroesRates) {
  // events_per_sec is a rate: the merged rate is recomputed by the sweep
  // from its own wall clock, so operator+= must not carry either operand's
  // value into the sum (that would make merges depend on timing).
  SimCounters a;
  a.events_per_sec = 123456;
  SimCounters b;
  b.events_per_sec = 654321;
  a += b;
  EXPECT_EQ(a.events_per_sec, 0u);
}

TEST(SimCounters, MergeWithDefaultIsIdentityExceptRate) {
  SimCounters a;
  a.msgs_sent = 7;
  a.cycles = 14;
  a.per_vc_sent[vc("VC1")] = 7;
  SimCounters sum;
  sum += a;
  EXPECT_EQ(sum.msgs_sent, a.msgs_sent);
  EXPECT_EQ(sum.cycles, a.cycles);
  EXPECT_EQ(sum.per_vc_sent, a.per_vc_sent);
  EXPECT_EQ(sum.events(), a.events());
}

TEST(SimCounters, SummaryListsCycleBreakdown) {
  SimCounters c;
  c.cycles = 107;
  c.mem_cycles = 100;
  c.bus_cycles = 2;
  c.c2c_cycles = 5;
  const std::string s = c.summary();
  EXPECT_NE(s.find("sim.cycles"), std::string::npos);
  EXPECT_NE(s.find("sim.mem_cycles"), std::string::npos);
  EXPECT_NE(s.find("sim.bus_cycles"), std::string::npos);
  EXPECT_NE(s.find("sim.c2c_cycles"), std::string::npos);
}

TEST(CycleModel, CacheToCacheFollowsFormula) {
  CycleModel m;  // 4 words/line
  EXPECT_EQ(m.c2c_cycles(4), 4 * 4 + (4 + 1));
  EXPECT_EQ(m.c2c_cycles(2), 4 * 4 + (2 + 1));
  m.words_per_line = 8;
  EXPECT_EQ(m.c2c_cycles(3), 4 * 8 + (3 + 1));
}

TEST(Workload, ParseRoundTrips) {
  for (Workload w : {Workload::kRandom, Workload::kLock,
                     Workload::kProducerConsumer, Workload::kFalseSharing,
                     Workload::kStreaming}) {
    const auto parsed = parse_workload(workload_name(w));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, w);
  }
  EXPECT_EQ(parse_workload("pc"), Workload::kProducerConsumer);
  EXPECT_EQ(parse_workload("fs"), Workload::kFalseSharing);
  EXPECT_EQ(parse_workload("stream"), Workload::kStreaming);
  EXPECT_FALSE(parse_workload("bogus").has_value());
}

}  // namespace
}  // namespace ccsql::sim
