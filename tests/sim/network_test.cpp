#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace ccsql::sim {
namespace {

SimMessage msg(const char* type, Addr a, QuadId s, QuadId d,
               const char* rs, const char* rd) {
  return SimMessage{V(type), a, s, d, V(rs), V(rd), -1};
}

ChannelAssignment assignment() {
  ChannelAssignment v("test");
  v.assign("readex", "local", "home", "VC0");
  v.assign("compl", "home", "local", "VC3");
  return v;
}

TEST(Network, SendAndReceive) {
  ChannelAssignment v = assignment();
  Network net(v, 2, 2);
  SimMessage m = msg("readex", 0, 0, 1, "local", "home");
  ASSERT_TRUE(net.can_send(m, 1));
  net.send(m, 1);
  EXPECT_EQ(net.in_flight(), 1u);
  auto queues = net.queues_to(1);
  ASSERT_EQ(queues.size(), 1u);
  EXPECT_EQ(queues[0].vc, V("VC0"));
  const SimMessage* front = net.front(queues[0]);
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front->type, V("readex"));
  net.pop(queues[0]);
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_TRUE(net.queues_to(1).empty());
}

TEST(Network, CapacityBlocks) {
  ChannelAssignment v = assignment();
  Network net(v, 2, 1);
  SimMessage m = msg("readex", 0, 0, 1, "local", "home");
  net.send(m, 1);
  EXPECT_FALSE(net.can_send(m, 1));  // VC0 0->1 full
  // A different link is independent.
  SimMessage m2 = msg("readex", 1, 1, 0, "local", "home");
  EXPECT_TRUE(net.can_send(m2, 0));
  // A different channel on the same link is independent.
  SimMessage m3 = msg("compl", 0, 0, 1, "home", "local");
  EXPECT_TRUE(net.can_send(m3, 1));
}

TEST(Network, DedicatedPathNeverBlocks) {
  ChannelAssignment v = assignment();  // mread unassigned
  Network net(v, 2, 1);
  SimMessage m = msg("mread", 0, 1, 1, "home", "home");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.can_send(m, 1));
    net.send(m, 1);
  }
  EXPECT_EQ(net.in_flight(), 10u);
  auto queues = net.queues_to(1);
  ASSERT_EQ(queues.size(), 1u);
  EXPECT_TRUE(queues[0].vc.is_null());
}

TEST(Network, FifoOrderPerChannel) {
  ChannelAssignment v = assignment();
  Network net(v, 2, 4);
  SimMessage a = msg("readex", 1, 0, 1, "local", "home");
  SimMessage b = msg("readex", 2, 0, 1, "local", "home");
  net.send(a, 1);
  net.send(b, 1);
  auto queues = net.queues_to(1);
  ASSERT_EQ(queues.size(), 1u);
  EXPECT_EQ(net.front(queues[0])->addr, 1);
  net.pop(queues[0]);
  EXPECT_EQ(net.front(queues[0])->addr, 2);
}

TEST(Network, DescribeBlockedListsOccupiedQueues) {
  ChannelAssignment v = assignment();
  Network net(v, 2, 1);
  net.send(msg("readex", 7, 0, 1, "local", "home"), 1);
  std::string s = net.describe_blocked();
  EXPECT_NE(s.find("VC0"), std::string::npos);
  EXPECT_NE(s.find("readex(a7 0->1)"), std::string::npos);
}

}  // namespace
}  // namespace ccsql::sim
