#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"

namespace ccsql::sim {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

/// The Figure 4 scenario: line A modified at the node co-located with home
/// (the L != H = R placement), line B modified at another node; wb(B) and
/// readex(A) issued concurrently into one-deep channels.
SimResult run_fig4(const char* assignment) {
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 6;
  cfg.channel_capacity = 1;
  Machine m(spec(), spec().assignment(assignment), cfg);
  m.set_memory_latency(16);
  m.set_line(2, "MESI", {2});
  m.set_line(5, "MESI", {0});
  m.script(0, "pwb", 5);
  m.script(1, "pwr", 2);
  return m.run();
}

TEST(MachineFig4, DeadlocksUnderV5) {
  SimResult r = run_fig4(asura::kAssignV5);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.completed);
  // The blocked channels are exactly the paper's cycle: the idone sits in
  // VC2 while the forwarded wb sits in VC4.
  EXPECT_NE(r.deadlock_report.find("VC2"), std::string::npos);
  EXPECT_NE(r.deadlock_report.find("idone"), std::string::npos);
  EXPECT_NE(r.deadlock_report.find("VC4"), std::string::npos);
  EXPECT_NE(r.deadlock_report.find("wb"), std::string::npos);
  EXPECT_TRUE(r.errors.empty()) << r.errors.front();
}

TEST(MachineFig4, CompletesUnderV5Fix) {
  SimResult r = run_fig4(asura::kAssignV5Fix);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.transactions_done, 2);
  EXPECT_TRUE(r.errors.empty()) << r.errors.front();
}

TEST(MachineFig4, DeadlocksUnderV4Too) {
  // V4 shares VC0 between node requests and directory->memory requests;
  // the same scenario wedges there as well.
  SimResult r = run_fig4(asura::kAssignV4);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlocked);
}

TEST(MachineScripted, ReadExclusiveTransfersOwnership) {
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(1, "MESI", {1});
  m.script(0, "pwr", 1);  // readex of a line owned elsewhere
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.transactions_done, 1);
}

TEST(MachineScripted, ReadDowngradesOwner) {
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(0, "MESI", {1});
  m.script(1, "prd", 0);  // hit at the owner: no traffic
  m.script(0, "prd", 0);  // remote read: sfetch / rdata path
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
}

TEST(MachineScripted, FlushFromNonHolder) {
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(1, "MESI", {1});
  m.script(0, "pfl", 1);  // flush a line owned elsewhere: sflush path
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
}

TEST(MachineScripted, WritebackRoundTrip) {
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(1, "MESI", {0});
  m.script(0, "pwb", 1);
  m.script(1, "prd", 1);  // reader sees the written-back data
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.transactions_done, 2);
}

TEST(MachineScripted, UpgradeInvalidatesOtherSharers) {
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 3;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(0, "SI", {1, 2});
  m.script(1, "pup", 0);
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
  auto leftovers = m.check_quiescent_state();
  EXPECT_TRUE(leftovers.empty());
}

TEST(MachineScripted, CoherentIoReadFromOwnedLine) {
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(1, "MESI", {1});
  m.script(0, "iord", 1);  // device read of a line owned elsewhere
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.transactions_done, 1);
  // The owner was downgraded, not invalidated.
  EXPECT_TRUE(m.check_quiescent_state().empty());
}

TEST(MachineScripted, CoherentIoWriteInvalidatesSharers) {
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 3;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(0, "SI", {1, 2});
  m.script(0, "iowr", 0);
  m.script(1, "prd", 0);  // the reader must observe the device write
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.transactions_done, 2);
}

TEST(MachineScripted, AtomicOnOwnedLine) {
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(0, "MESI", {1});
  m.script(0, "patomic", 0);  // atomic against a line modified elsewhere
  m.script(1, "prd", 0);      // reader sees the atomic's result
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.transactions_done, 2);
}

TEST(MachineScripted, EvictionShrinksSharerSet) {
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 3;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(0, "SI", {0, 1, 2});
  m.script(1, "pevict", 0);
  SimResult r = m.run();
  EXPECT_TRUE(r.healthy()) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.transactions_done, 1);
  EXPECT_TRUE(m.check_quiescent_state().empty());
}

TEST(MachineQuiescent, SetLineStatesAreConsistent) {
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 4;
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_line(0, "SI", {0, 1});
  m.set_line(1, "MESI", {1});
  EXPECT_TRUE(m.check_quiescent_state().empty());
}

class MachineRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(MachineRandom, RandomWorkloadHealthyUnderV5Fix) {
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 4;
  cfg.channel_capacity = 1 + GetParam() % 3;
  cfg.transactions_per_node = 40;
  cfg.seed = GetParam();
  Machine m(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  m.set_memory_latency(static_cast<int>(GetParam() % 4));
  m.enable_random_workload();
  SimResult r = m.run();
  EXPECT_TRUE(r.completed) << "steps=" << r.steps;
  EXPECT_FALSE(r.deadlocked) << r.deadlock_report;
  EXPECT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(r.transactions_done, 3 * 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineRandom, ::testing::Range(1u, 16u));

}  // namespace
}  // namespace ccsql::sim
