#include "core/flow.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& asura_spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

TEST(Flow, FullAsuraRunIsDebuggedUnderTheFix) {
  Flow flow(asura_spec());
  FlowOptions opts;
  opts.map_directory = true;
  FlowReport report = flow.run(opts);

  EXPECT_EQ(report.tables.size(), 8u);
  for (const auto& t : report.tables) {
    EXPECT_GT(t.rows, 0u) << t.name;
    EXPECT_GT(t.gen_micros, 0.0) << t.name;
  }
  EXPECT_GE(report.invariants.size(), 45u);
  EXPECT_TRUE(report.invariants_hold());

  ASSERT_EQ(report.assignments.size(), 3u);
  EXPECT_FALSE(report.deadlock_free(asura::kAssignV4));
  EXPECT_FALSE(report.deadlock_free(asura::kAssignV5));
  EXPECT_TRUE(report.deadlock_free(asura::kAssignV5Fix));
  EXPECT_FALSE(report.deadlock_free());  // some assignment has cycles

  EXPECT_TRUE(report.mapping_ran);
  EXPECT_TRUE(report.mapping.ok());

  // The paper's acceptance criterion holds for the shipped assignment and
  // fails for the buggy ones.
  EXPECT_TRUE(report.debugged(asura::kAssignV5Fix));
  EXPECT_FALSE(report.debugged(asura::kAssignV5));

  // The paper's interactive <5-minute budget must hold for this suite.
  EXPECT_TRUE(report.invariants_within_budget());
  EXPECT_GT(InvariantChecker::total_micros(report.invariants), 0.0);

  // The dynamic-validation simulation ran under the cycle-free assignment
  // and is healthy.
  EXPECT_TRUE(report.sim.ran);
  EXPECT_FALSE(report.sim.skipped);
  EXPECT_EQ(report.sim.assignment, asura::kAssignV5Fix);
  EXPECT_TRUE(report.sim.healthy);
  EXPECT_GT(report.sim.transactions, 0);
  EXPECT_EQ(report.sim.error_count, 0u);
}

TEST(Flow, SimValidationCanBeDisabled) {
  Flow flow(asura_spec());
  FlowOptions opts;
  opts.sim_validate = false;
  FlowReport report = flow.run(opts);
  EXPECT_FALSE(report.sim.ran);
  EXPECT_FALSE(report.sim.skipped);
  EXPECT_EQ(report.summary().find("sim validation"), std::string::npos);
}

TEST(Flow, SimValidationSkipsWhenNoCycleFreeAssignment) {
  Flow flow(asura_spec());
  FlowOptions opts;
  opts.assignments = {asura::kAssignV5};  // has cycles
  FlowReport report = flow.run(opts);
  EXPECT_FALSE(report.sim.ran);
  EXPECT_TRUE(report.sim.skipped);
  EXPECT_NE(report.summary().find("sim validation: skipped"),
            std::string::npos);
}

TEST(Flow, AssignmentFilterLimitsAnalysis) {
  Flow flow(asura_spec());
  FlowOptions opts;
  opts.assignments = {asura::kAssignV5};
  FlowReport report = flow.run(opts);
  ASSERT_EQ(report.assignments.size(), 1u);
  EXPECT_EQ(report.assignments[0].name, asura::kAssignV5);
  EXPECT_GT(report.assignments[0].edges, 0u);
  EXPECT_FALSE(report.assignments[0].cycles.empty());
}

TEST(Flow, SummaryMentionsEverything) {
  Flow flow(asura_spec());
  FlowOptions opts;
  opts.map_directory = true;
  std::string s = flow.run(opts).summary();
  EXPECT_NE(s.find("controller tables:"), std::string::npos);
  EXPECT_NE(s.find("D: "), std::string::npos);
  EXPECT_NE(s.find("invariants: "), std::string::npos);
  EXPECT_NE(s.find("budget OK"), std::string::npos);
  EXPECT_NE(s.find("assignment V5fix"), std::string::npos);
  EXPECT_NE(s.find("hardware mapping: "), std::string::npos);
  EXPECT_NE(s.find("verified"), std::string::npos);
  EXPECT_NE(s.find("sim validation"), std::string::npos);
  EXPECT_NE(s.find("healthy"), std::string::npos);
}

TEST(Flow, SkippingInvariantsLeavesThemEmpty) {
  Flow flow(asura_spec());
  FlowOptions opts;
  opts.check_invariants = false;
  FlowReport report = flow.run(opts);
  EXPECT_TRUE(report.invariants.empty());
  EXPECT_TRUE(report.invariants_hold());  // vacuously
}

TEST(Flow, CatchesInjectedInvariantViolation) {
  // A fresh spec with a deliberately broken extra invariant.
  auto spec = asura::make_asura();
  spec->add_invariant(NamedInvariant{
      "bogus", "there are readex rows, so this fails",
      "[select inmsg from D where inmsg = readex] = empty"});
  Flow flow(*spec);
  FlowReport report = flow.run();
  EXPECT_FALSE(report.invariants_hold());
  EXPECT_FALSE(report.debugged(asura::kAssignV5Fix));
  EXPECT_NE(report.summary().find("1 violated"), std::string::npos);
}

}  // namespace
}  // namespace ccsql
