#include "core/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace ccsql::core {
namespace {

TEST(Pool, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(Pool::default_jobs(), 1u);
}

TEST(Pool, WorkerIdIsMinusOneOffPool) {
  EXPECT_EQ(Pool::worker_id(), -1);
}

TEST(Pool, ParallelForCoversEveryIndexExactlyOnce) {
  Pool pool(3);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, 64, 4, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Pool, MorselBoundariesDependOnlyOnSizeAndGrain) {
  // The determinism contract: the same (n, grain) yields the same morsel
  // set at any jobs value, so slot-per-morsel output concatenates
  // identically.
  auto morsels = [](Pool& pool, std::size_t jobs) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> out(17);
    pool.parallel_for(1000, 60, jobs,
                      [&](std::size_t b, std::size_t e, std::size_t m) {
                        std::lock_guard<std::mutex> lock(mu);
                        out[m] = {b, e};
                      });
    return out;
  };
  Pool serial(0);
  Pool wide(4);
  EXPECT_EQ(morsels(serial, 1), morsels(wide, 8));
}

TEST(Pool, ParallelForInlineWhenSingleJob) {
  // jobs <= 1 must run on the calling thread (no pool handoff), so bodies
  // may touch caller-thread state without synchronisation.
  Pool pool(2);
  std::vector<int> order;
  pool.parallel_for(5, 2, 1, [&](std::size_t b, std::size_t e, std::size_t) {
    EXPECT_EQ(Pool::worker_id(), -1);
    for (std::size_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Pool, ParallelForZeroItemsIsANoop) {
  Pool pool(2);
  bool ran = false;
  pool.parallel_for(0, 16, 4,
                    [&](std::size_t, std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Pool, ParallelTasksRunsEachIndexOnce) {
  Pool pool(2);
  std::mutex mu;
  std::multiset<std::size_t> seen;
  pool.parallel_tasks(37, 4, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 37u);
  for (std::size_t i = 0; i < 37; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Pool, BodyExceptionPropagatesToCaller) {
  Pool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100, 10, 4,
                        [&](std::size_t b, std::size_t, std::size_t) {
                          if (b == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(Pool, NestedParallelismDoesNotDeadlock) {
  // A task blocked in an inner parallel_for keeps helping with pool work,
  // so a parallel region inside a parallel region completes even when the
  // pool is smaller than the total lane demand.
  Pool pool(1);
  std::atomic<std::size_t> total{0};
  pool.parallel_tasks(4, 4, [&](std::size_t) {
    pool.parallel_for(100, 10, 4,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        total.fetch_add(e - b);
                      });
  });
  EXPECT_EQ(total.load(), 400u);
}

TEST(Pool, GroupWaitRethrowsFirstError) {
  Pool pool(2);
  Pool::Group group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i == 3) throw std::logic_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(Pool, ZeroWorkerPoolStillCompletesGroups) {
  Pool pool(0);
  std::atomic<int> done{0};
  Pool::Group group(pool);
  for (int i = 0; i < 5; ++i) group.run([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 5);
}

}  // namespace
}  // namespace ccsql::core
