// The generality claim (paper, section 1): "The approach can be easily
// applied to other cache coherence protocols such as those described in
// [2, 10]".  This exercises the full methodology — generation, SQL
// invariants, deadlock analysis — on a second, structurally different
// protocol: a split-transaction snooping-bus MSI design.
#include "protocol/snoopbus/snoopbus.hpp"

#include <gtest/gtest.h>

#include "checks/invariant.hpp"
#include "checks/vcg.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = snoopbus::make_snoopbus();
  return *s;
}

TEST(Snoopbus, TablesGenerate) {
  const Catalog& db = spec().database().catalog();
  EXPECT_EQ(spec().controllers().size(), 3u);
  EXPECT_GT(db.get(snoopbus::kCache).row_count(), 20u);
  EXPECT_EQ(db.get(snoopbus::kMemory).row_count(), 6u);
  EXPECT_EQ(db.get(snoopbus::kArbiter).row_count(), 3u);
}

TEST(Snoopbus, AllInvariantsHold) {
  InvariantChecker checker(spec().database());
  auto results = checker.check_all(spec().invariants());
  EXPECT_GE(results.size(), 8u);
  EXPECT_TRUE(InvariantChecker::all_hold(results))
      << InvariantChecker::report(results);
}

TEST(Snoopbus, MsiTransitionsAreTheTextbookOnes) {
  Catalog cat;
  cat.put("SC", spec().database().get(snoopbus::kCache));
  // Load miss: GetS on the bus, transient ISd.
  Table miss = cat.query(
      "select busmsg, nxtcst from SC where inmsg = ld and cst = \"I\"");
  ASSERT_EQ(miss.row_count(), 1u);
  EXPECT_EQ(miss.at(0, "busmsg"), V("GetS"));
  EXPECT_EQ(miss.at(0, "nxtcst"), V("ISd"));
  // Foreign GetM invalidates a shared copy; a modified snooper also
  // sources the data.
  Table inv = cat.query(
      "select datamsg, nxtcst from SC where inmsg = GetM and own = no and "
      "cst = \"M\"");
  ASSERT_EQ(inv.row_count(), 1u);
  EXPECT_EQ(inv.at(0, "datamsg"), V("DataOwner"));
  EXPECT_EQ(inv.at(0, "nxtcst"), V("I"));
}

TEST(Snoopbus, SharedBusAssignmentIsCyclic) {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : spec().controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, spec().database().get(c->name())));
  }
  DeadlockAnalysis analysis(refs,
                            spec().assignment(snoopbus::kAssignShared));
  ASSERT_FALSE(analysis.deadlock_free());
  // The witness: memory answers a snooped request on the same channel
  // class the request occupies.
  bool found = false;
  for (const auto& c : analysis.cycles()) {
    for (const auto& w : c.witnesses) {
      if (w.m2 == V("DataMem")) found = true;
    }
  }
  EXPECT_TRUE(found) << analysis.report();
}

TEST(Snoopbus, SplitBusAssignmentIsDeadlockFree) {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : spec().controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, spec().database().get(c->name())));
  }
  DeadlockAnalysis analysis(refs, spec().assignment(snoopbus::kAssignSplit));
  EXPECT_TRUE(analysis.deadlock_free()) << analysis.report();
}

TEST(Snoopbus, FaultInjectionCaught) {
  // Breaking the owner-sources-data rule trips the invariant.
  Table sc = spec().database().get(snoopbus::kCache);
  Table corrupted(sc.schema_ptr());
  const std::size_t dm = sc.schema().index_of("datamsg");
  const std::size_t im = sc.schema().index_of("inmsg");
  const std::size_t ow = sc.schema().index_of("own");
  const std::size_t cs = sc.schema().index_of("cst");
  for (std::size_t r = 0; r < sc.row_count(); ++r) {
    std::vector<Value> row(sc.row(r).begin(), sc.row(r).end());
    if (row[im] == V("GetS") && row[ow] == V("no") && row[cs] == V("M")) {
      row[dm] = null_value();  // owner silently drops the request
    }
    corrupted.append(RowView(row));
  }
  Catalog cat;
  cat.put("SC", std::move(corrupted));
  bool caught = false;
  for (const auto& inv : spec().invariants()) {
    if (inv.name == "sb-owner-answers") {
      caught = !cat.check_empty(inv.sql);
    }
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace ccsql
