#include "protocol/message.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"
#include "relational/query.hpp"

namespace ccsql {
namespace {

MessageCatalog small_catalog() {
  MessageCatalog m;
  m.add("readex", MessageClass::kRequest, "read exclusive");
  m.add("compl", MessageClass::kResponse, "completion");
  m.add("sinv", MessageClass::kRequest);
  return m;
}

TEST(MessageCatalog, ClassifyAndPredicates) {
  MessageCatalog m = small_catalog();
  EXPECT_TRUE(m.has(V("readex")));
  EXPECT_FALSE(m.has(V("zzz")));
  EXPECT_TRUE(m.is_request(V("readex")));
  EXPECT_FALSE(m.is_request(V("compl")));
  EXPECT_TRUE(m.is_response(V("compl")));
  EXPECT_FALSE(m.is_response(V("zzz")));
  EXPECT_EQ(m.classify(V("sinv")), MessageClass::kRequest);
  EXPECT_EQ(m.classify(V("zzz")), std::nullopt);
}

TEST(MessageCatalog, DuplicateRejected) {
  MessageCatalog m = small_catalog();
  EXPECT_THROW(m.add("readex", MessageClass::kResponse), Error);
}

TEST(MessageCatalog, NamesFiltered) {
  MessageCatalog m = small_catalog();
  EXPECT_EQ(m.names().size(), 3u);
  EXPECT_EQ(m.names(MessageClass::kRequest),
            (std::vector<std::string>{"readex", "sinv"}));
  EXPECT_EQ(m.names(MessageClass::kResponse),
            std::vector<std::string>{"compl"});
}

TEST(MessageCatalog, InstallRegistersPredicates) {
  MessageCatalog m = small_catalog();
  FunctionRegistry fns;
  m.install(fns);
  ASSERT_TRUE(fns.has("isrequest"));
  ASSERT_TRUE(fns.has("isresponse"));
  std::vector<Value> arg{V("readex")};
  EXPECT_TRUE((*fns.find("isrequest"))(std::span<const Value>(arg)));
  arg[0] = V("compl");
  EXPECT_FALSE((*fns.find("isrequest"))(std::span<const Value>(arg)));
  EXPECT_TRUE((*fns.find("isresponse"))(std::span<const Value>(arg)));
}

TEST(MessageCatalog, ToTableIsQueryable) {
  MessageCatalog m = small_catalog();
  Catalog cat;
  cat.put("Messages", m.to_table());
  EXPECT_EQ(cat.get("Messages").row_count(), 3u);
  Table reqs =
      cat.query("select message from Messages where class = request");
  EXPECT_EQ(reqs.row_count(), 2u);
}

TEST(MessageClass, ToString) {
  EXPECT_EQ(to_string(MessageClass::kRequest), "request");
  EXPECT_EQ(to_string(MessageClass::kResponse), "response");
}

}  // namespace
}  // namespace ccsql
