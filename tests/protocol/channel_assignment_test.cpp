#include "protocol/channel_assignment.hpp"

#include <gtest/gtest.h>

namespace ccsql {
namespace {

TEST(ChannelAssignment, AssignAndLookup) {
  ChannelAssignment v("V");
  v.assign("readex", "local", "home", "VC0");
  v.assign("sinv", "home", "remote", "VC1");
  EXPECT_EQ(v.name(), "V");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.vc_for(V("readex"), V("local"), V("home")), V("VC0"));
  EXPECT_EQ(v.vc_for(V("sinv"), V("home"), V("remote")), V("VC1"));
  // Same message on a different (s, d) pair is a different triple.
  EXPECT_EQ(v.vc_for(V("readex"), V("home"), V("home")), std::nullopt);
  EXPECT_EQ(v.vc_for(V("zzz"), V("local"), V("home")), std::nullopt);
}

TEST(ChannelAssignment, ReassignReplaces) {
  ChannelAssignment v("V");
  v.assign("mread", "home", "home", "VC0");
  v.assign("mread", "home", "home", "VC4");  // paper's iteration
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.vc_for(V("mread"), V("home"), V("home")), V("VC4"));
}

TEST(ChannelAssignment, UnassignModelsDedicatedPath) {
  ChannelAssignment v("V");
  v.assign("mread", "home", "home", "VC4");
  v.assign("wb", "home", "home", "VC4");
  v.unassign("mread", "home", "home");
  EXPECT_EQ(v.vc_for(V("mread"), V("home"), V("home")), std::nullopt);
  EXPECT_EQ(v.vc_for(V("wb"), V("home"), V("home")), V("VC4"));
  EXPECT_EQ(v.size(), 1u);
  // Unassigning a missing triple is a no-op.
  v.unassign("zzz", "home", "home");
  EXPECT_EQ(v.size(), 1u);
}

TEST(ChannelAssignment, UnassignKeepsIndexConsistent) {
  ChannelAssignment v("V");
  v.assign("a", "local", "home", "VC0");
  v.assign("b", "local", "home", "VC1");
  v.assign("c", "local", "home", "VC2");
  v.unassign("a", "local", "home");
  EXPECT_EQ(v.vc_for(V("b"), V("local"), V("home")), V("VC1"));
  EXPECT_EQ(v.vc_for(V("c"), V("local"), V("home")), V("VC2"));
  v.assign("b", "local", "home", "VC3");
  EXPECT_EQ(v.vc_for(V("b"), V("local"), V("home")), V("VC3"));
}

TEST(ChannelAssignment, ChannelsInFirstAssignmentOrder) {
  ChannelAssignment v("V");
  v.assign("a", "local", "home", "VC2");
  v.assign("b", "local", "home", "VC0");
  v.assign("c", "home", "remote", "VC2");
  auto chans = v.channels();
  ASSERT_EQ(chans.size(), 2u);
  EXPECT_EQ(chans[0], V("VC2"));
  EXPECT_EQ(chans[1], V("VC0"));
}

TEST(ChannelAssignment, ToTableMatchesPaperColumns) {
  ChannelAssignment v("V");
  v.assign("readex", "local", "home", "VC0");
  Table t = v.to_table();
  ASSERT_EQ(t.column_count(), 4u);
  EXPECT_EQ(t.schema().column(0).name, "m");
  EXPECT_EQ(t.schema().column(3).name, "v");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.at(0, "v"), V("VC0"));
}

}  // namespace
}  // namespace ccsql
