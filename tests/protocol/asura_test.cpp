#include "protocol/asura/asura.hpp"

#include <gtest/gtest.h>

#include "relational/format.hpp"

namespace ccsql {
namespace {

/// One spec shared by all tests in this file: generation is deterministic
/// and the spec is immutable after construction.
const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

const Catalog& db() { return spec().database().catalog(); }

TEST(Asura, HasEightControllerTables) {
  EXPECT_EQ(spec().controllers().size(), 8u);
  for (const char* name :
       {asura::kDirectory, asura::kMemory, asura::kNode, asura::kCache,
        asura::kRemoteSnoop, asura::kRac, asura::kIo, asura::kInterrupt}) {
    EXPECT_TRUE(db().has(name)) << name;
    EXPECT_GT(db().get(name).row_count(), 0u) << name;
  }
}

TEST(Asura, MessageCatalogAroundFifty) {
  // Paper, section 2: "Around 50 different types of messages".  Ours is
  // slightly above: the published vocabulary plus the race-handling
  // messages dynamic validation forced (wbcancel, nack, gdone) and the
  // replacement/atomic transactions.
  EXPECT_GE(spec().messages().size(), 45u);
  EXPECT_LE(spec().messages().size(), 60u);
}

TEST(Asura, DirectoryTableShape) {
  // Paper, section 3: D has 30 columns; rows within the same order of
  // magnitude as the published ~500 (our transaction set is the published
  // subset, so fewer rows).
  const Table& d = db().get(asura::kDirectory);
  EXPECT_EQ(d.column_count(), 30u);
  EXPECT_GE(d.row_count(), 100u);
  EXPECT_LE(d.row_count(), 600u);
  // 10 inputs then 20 outputs.
  std::size_t inputs = 0;
  for (const auto& col : d.schema().columns()) {
    if (col.kind == ColumnKind::kInput) ++inputs;
  }
  EXPECT_EQ(inputs, 10u);
}

TEST(Asura, BusyStatesAllReachable) {
  // Every busy state appears as some row's next state, and every busy
  // state has at least one exit (a row consuming it).
  Catalog cat;
  cat.put("D", db().get(asura::kDirectory));
  cat.functions() = db().functions();
  for (const auto& b : asura::busy_states()) {
    EXPECT_GT(
        cat.query("select * from D where nxtbdirst = \"" + b + "\"")
            .row_count(),
        0u)
        << "unreachable busy state " << b;
    EXPECT_GT(cat.query("select * from D where bdirst = \"" + b +
                        "\" and isresponse(inmsg)")
                  .row_count(),
              0u)
        << "busy state with no exit " << b;
  }
}

TEST(Asura, AllInvariantsHold) {
  // Paper, section 4.3: around 50 invariants, all checked clean.
  EXPECT_GE(spec().invariants().size(), 45u);
  for (const auto& inv : spec().invariants()) {
    EXPECT_TRUE(db().check_empty(inv.sql)) << inv.name;
  }
}

TEST(Asura, Figure2ReadexAtSiRow) {
  // Figure 2: readex finds the line SI at a remote node; D sends sinv to
  // remote and mread to memory simultaneously and enters the busy state
  // awaiting snoop + data responses.
  Catalog cat;
  cat.put("D", db().get(asura::kDirectory));
  Table row = cat.query(
      "select * from D where inmsg = readex and dirst = SI and "
      "bdirst = \"I\"");
  ASSERT_EQ(row.row_count(), 2u);  // dirpv one / gone
  for (std::size_t r = 0; r < row.row_count(); ++r) {
    EXPECT_EQ(row.at(r, "remmsg"), V("sinv"));
    EXPECT_EQ(row.at(r, "memmsg"), V("mread"));
    EXPECT_EQ(row.at(r, "nxtbdirst"), V("Busy-rx-sd"));
    EXPECT_EQ(row.at(r, "bdirop"), V("alloc"));
  }
}

TEST(Asura, Figure3BusyProgression) {
  // Figure 3: Busy-sd -data-> Busy-s; Busy-sd -idone(last)-> Busy-d;
  // completion updates state to MESI and transfers ownership.
  Catalog cat;
  cat.put("D", db().get(asura::kDirectory));
  Table t1 = cat.query(
      "select nxtbdirst from D where inmsg = \"data\" and "
      "bdirst = \"Busy-rx-sd\"");
  ASSERT_GE(t1.row_count(), 1u);
  EXPECT_EQ(t1.at(0, 0), V("Busy-rx-s"));

  Table t2 = cat.query(
      "select nxtbdirst from D where inmsg = idone and "
      "bdirst = \"Busy-rx-sd\" and bdirpv = one");
  ASSERT_EQ(t2.row_count(), 1u);
  EXPECT_EQ(t2.at(0, 0), V("Busy-rx-d"));

  // The grant: data at Busy-rx-d responds compl+data and holds the line
  // until the requester's acknowledgement installs MESI and transfers
  // ownership (our grant-acknowledged extension of the Figure 3 flow).
  Table grant = cat.query(
      "select locmsg, nxtbdirst, cmpl from D where "
      "inmsg = \"data\" and bdirst = \"Busy-rx-d\"");
  ASSERT_EQ(grant.row_count(), 1u);
  EXPECT_EQ(grant.at(0, "locmsg"), V("compl"));
  EXPECT_EQ(grant.at(0, "nxtbdirst"), V("Busy-rx-g"));
  EXPECT_EQ(grant.at(0, "cmpl"), V("cont"));

  Table done = cat.query(
      "select nxtdirst, nxtdirpv, bdirop, cmpl from D where "
      "inmsg = gdone and bdirst = \"Busy-rx-g\"");
  ASSERT_EQ(done.row_count(), 1u);
  EXPECT_EQ(done.at(0, "nxtdirst"), V("MESI"));
  EXPECT_EQ(done.at(0, "nxtdirpv"), V("repl"));
  EXPECT_EQ(done.at(0, "bdirop"), V("free"));
  EXPECT_EQ(done.at(0, "cmpl"), V("done"));
}

TEST(Asura, Figure4WitnessRows) {
  // The two controller-table rows behind the Figure 4 deadlock:
  //  R1 (memory): processing wb produces compl home->home.
  //  R2 (directory): processing idone at the owner-invalidation state
  //      produces mread home->home.
  Catalog cat;
  cat.put("M", db().get(asura::kMemory));
  cat.put("D", db().get(asura::kDirectory));
  Table r1 = cat.query(
      "select outmsg, outmsgsrc, outmsgdest from M where inmsg = wb");
  ASSERT_EQ(r1.row_count(), 1u);
  EXPECT_EQ(r1.at(0, "outmsg"), V("compl"));
  EXPECT_EQ(r1.at(0, "outmsgsrc"), V("home"));
  EXPECT_EQ(r1.at(0, "outmsgdest"), V("home"));

  Table r2 = cat.query(
      "select memmsg, memmsgsrc, memmsgdest, inmsgsrc from D where "
      "inmsg = idone and bdirst = \"Busy-rx-si\"");
  ASSERT_EQ(r2.row_count(), 1u);
  EXPECT_EQ(r2.at(0, "memmsg"), V("mread"));
  EXPECT_EQ(r2.at(0, "memmsgsrc"), V("home"));
  EXPECT_EQ(r2.at(0, "memmsgdest"), V("home"));
  EXPECT_EQ(r2.at(0, "inmsgsrc"), V("remote"));
}

TEST(Asura, RetryWheneverBusy) {
  Catalog cat;
  cat.put("D", db().get(asura::kDirectory));
  cat.functions() = db().functions();
  Table t = cat.query(
      "select * from D where isrequest(inmsg) and not bdirst = \"I\"");
  EXPECT_GT(t.row_count(), 50u);
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    EXPECT_EQ(t.at(r, "locmsg"), V("retry"));
    EXPECT_TRUE(t.at(r, "remmsg").is_null());
    EXPECT_TRUE(t.at(r, "memmsg").is_null());
  }
}

TEST(Asura, DeterministicLookup) {
  // The simulator depends on (inmsg, dirst, dirlookup, dirpv, bdirst,
  // bdirpv) selecting exactly one row: check there are no duplicate input
  // combinations (dirlookup disambiguates stale writebacks / evictions).
  const Table& d = db().get(asura::kDirectory);
  Table inputs = d.project(
      {"inmsg", "dirst", "dirlookup", "dirpv", "bdirst", "bdirpv"},
      /*distinct=*/false);
  EXPECT_EQ(inputs.row_count(), inputs.distinct().row_count());
}

TEST(Asura, ChannelAssignmentsPresent) {
  EXPECT_EQ(spec().assignments().size(), 3u);
  const auto& v4 = spec().assignment(asura::kAssignV4);
  const auto& v5 = spec().assignment(asura::kAssignV5);
  const auto& v5fix = spec().assignment(asura::kAssignV5Fix);
  EXPECT_EQ(v4.channels().size(), 4u);
  EXPECT_EQ(v5.channels().size(), 5u);
  EXPECT_EQ(v5fix.channels().size(), 4u);
  // Paper section 4.2: VC4 carries requests from home directory to home
  // memory in V5.
  EXPECT_EQ(v5.vc_for(V("mread"), V("home"), V("home")), V("VC4"));
  EXPECT_EQ(v5.vc_for(V("wb"), V("home"), V("home")), V("VC4"));
  EXPECT_EQ(v4.vc_for(V("mread"), V("home"), V("home")), V("VC0"));
  // The fix: dedicated path, no virtual channel.
  EXPECT_EQ(v5fix.vc_for(V("mread"), V("home"), V("home")), std::nullopt);
  // Published classification: requests local->home on VC0, snoops on VC1,
  // remote responses on VC2, local responses on VC3.
  EXPECT_EQ(v5.vc_for(V("readex"), V("local"), V("home")), V("VC0"));
  EXPECT_EQ(v5.vc_for(V("sinv"), V("home"), V("remote")), V("VC1"));
  EXPECT_EQ(v5.vc_for(V("idone"), V("remote"), V("home")), V("VC2"));
  EXPECT_EQ(v5.vc_for(V("compl"), V("home"), V("local")), V("VC3"));
  EXPECT_EQ(v5.vc_for(V("compl"), V("home"), V("home")), V("VC2"));
}

TEST(Asura, EveryTableMessageIsInCatalog) {
  // Vocabulary closure: every message value appearing in a message column
  // of any controller table is a catalogued message.
  for (const auto& c : spec().controllers()) {
    const Table& t = db().get(c->name());
    for (const auto& triple : c->message_triples()) {
      const std::size_t col = t.schema().index_of(triple.msg);
      for (std::size_t r = 0; r < t.row_count(); ++r) {
        const Value m = t.at(r, col);
        if (m.is_null()) continue;
        EXPECT_TRUE(spec().messages().has(m))
            << c->name() << "." << triple.msg << " row " << r << ": "
            << m.str();
      }
    }
  }
}

TEST(Asura, OutputsProducedSomewhereAreConsumedSomewhere) {
  // Cross-controller closure: every inter-role message some controller
  // emits is accepted as an input by some controller (role-level).
  std::set<std::string> consumed;
  for (const auto& c : spec().controllers()) {
    const Table& t = db().get(c->name());
    const MessageTriple* in = c->input_triple();
    ASSERT_NE(in, nullptr) << c->name();
    const std::size_t col = t.schema().index_of(in->msg);
    for (std::size_t r = 0; r < t.row_count(); ++r) {
      consumed.insert(std::string(t.at(r, col).str()));
    }
  }
  // Messages consumed by a processor / device / cache-data sink rather
  // than a controller table.
  const std::set<std::string> sinks = {"pdata", "pdone", "devdata",
                                       "devdone", "hit", "miss", "astate",
                                       "nack"};
  for (const auto& c : spec().controllers()) {
    const Table& t = db().get(c->name());
    for (const auto& triple : c->output_triples()) {
      const std::size_t col = t.schema().index_of(triple.msg);
      for (std::size_t r = 0; r < t.row_count(); ++r) {
        const Value m = t.at(r, col);
        if (m.is_null()) continue;
        const std::string name(m.str());
        EXPECT_TRUE(consumed.count(name) || sinks.count(name))
            << c->name() << " emits unconsumed message " << name;
      }
    }
  }
}

TEST(Asura, FaultInjectionInvariantCatchesCorruption) {
  // Corrupt the debugged table (MESI with an empty presence vector) and
  // check the paper's first invariant flags it.
  Table d = db().get(asura::kDirectory);
  std::vector<Value> row(d.row(0).begin(), d.row(0).end());
  row[d.schema().index_of("dirst")] = V("MESI");
  row[d.schema().index_of("dirpv")] = V("zero")  ;
  d.append(RowView(row));
  Catalog cat;
  cat.put("D", std::move(d));
  const auto& inv = spec().invariants().front();
  ASSERT_EQ(inv.name, "dir-state-pv-consistency");
  EXPECT_FALSE(cat.check_empty(inv.sql));
}

TEST(Asura, FaultInjectionSerializationCatchesMissingRetry) {
  // A row accepting a request on a busy line without retry violates the
  // serialization invariant.
  Table d = db().get(asura::kDirectory);
  std::vector<Value> row(d.row(0).begin(), d.row(0).end());
  row[d.schema().index_of("inmsg")] = V("readex");
  row[d.schema().index_of("bdirst")] = V("Busy-wb-m");
  row[d.schema().index_of("locmsg")] = null_value();
  d.append(RowView(row));
  Catalog cat;
  cat.put("D", std::move(d));
  cat.functions() = db().functions();
  bool found = false;
  for (const auto& inv : spec().invariants()) {
    if (inv.name == "dir-serializes-requests") {
      EXPECT_FALSE(cat.check_empty(inv.sql));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ccsql
