// Golden-file regression: the read-exclusive transaction slice of the
// directory controller (the paper's Figure 3 plus our grant-ack tail) is
// pinned to a committed CSV.  Any change to those rows — intended or not —
// shows up as a diff of this file, which is exactly how the paper's teams
// reviewed table revisions.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "protocol/asura/asura.hpp"
#include "relational/format.hpp"

namespace ccsql {
namespace {

const char* kGoldenPath = CCSQL_GOLDEN_DIR "/readex_transaction.csv";

Table current_slice() {
  static const std::unique_ptr<ProtocolSpec> spec = asura::make_asura();
  Catalog cat;
  cat.put("D", spec->database().get(asura::kDirectory));
  cat.functions() = spec->database().functions();
  return cat.query(
      "select inmsg, dirst, dirlookup, dirpv, bdirst, bdirpv, locmsg, "
      "remmsg, memmsg, nxtdirst, nxtdirpv, nxtbdirst, nxtbdirpv, bdirop, "
      "datapath, cmpl from D where inmsg in (readex, gdone, data, idone) "
      "and bdirst in (I, Busy-rx-sd, Busy-rx-s, Busy-rx-d, Busy-rx-si, "
      "Busy-rx-g) "
      "order by inmsg, dirst, dirpv, bdirst, bdirpv");
}

TEST(Golden, ReadexTransactionSliceMatchesPinnedCsv) {
  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good()) << "missing golden file " << kGoldenPath;
  std::stringstream buffer;
  buffer << in.rdbuf();
  Table expected = from_csv(buffer.str());
  Table actual = current_slice();
  EXPECT_EQ(actual.row_count(), expected.row_count());
  EXPECT_TRUE(actual.with_schema(expected.schema_ptr()).set_equal(expected))
      << "readex transaction rows changed; if intended, regenerate the "
         "golden file:\n"
      << to_csv(actual);
}

TEST(Golden, SliceCoversTheFigure3Chain) {
  Catalog cat;
  cat.put("S", current_slice());
  // The three Figure 3 hops are all present in the pinned slice.
  EXPECT_EQ(cat.query("select * from S where inmsg = \"data\" and "
                      "bdirst = \"Busy-rx-sd\" and "
                      "nxtbdirst = \"Busy-rx-s\"")
                .row_count(),
            2u);
  EXPECT_EQ(cat.query("select * from S where inmsg = idone and "
                      "bdirpv = one and bdirst = \"Busy-rx-sd\" and "
                      "nxtbdirst = \"Busy-rx-d\"")
                .row_count(),
            1u);
  EXPECT_EQ(cat.query("select * from S where inmsg = gdone and "
                      "nxtdirst = \"MESI\"")
                .row_count(),
            1u);
}

}  // namespace
}  // namespace ccsql
