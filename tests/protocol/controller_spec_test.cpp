#include "protocol/controller_spec.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"

namespace ccsql {
namespace {

ControllerSpec tiny() {
  ControllerSpec c("T");
  c.add_input("inmsg", {"req", "resp"});
  c.add_input("st", {"idle", "busy"});
  c.add_output("out", {"NULL", "grant", "done"});
  c.constrain("st", "inmsg = resp ? st = busy : true");
  c.constrain("out",
              "inmsg = req and st = idle ? out = grant : "
              "(inmsg = resp ? out = done : out = NULL)");
  c.add_message_triple({"inmsg", "insrc", "indst", true});
  c.add_message_triple({"out", "outsrc", "outdst", false});
  return c;
}

TEST(ControllerSpec, GenerateSolvesConstraints) {
  ControllerSpec c = tiny();
  const Table& t = c.generate(nullptr);
  // req x {idle,busy} + resp x busy = 3 rows.
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_EQ(t.schema().column(0).kind, ColumnKind::kInput);
  EXPECT_EQ(t.schema().column(2).kind, ColumnKind::kOutput);
}

TEST(ControllerSpec, GenerateIsCached) {
  ControllerSpec c = tiny();
  const Table& t1 = c.generate(nullptr);
  const Table& t2 = c.generate(nullptr);
  EXPECT_EQ(&t1, &t2);
  c.invalidate();
  const Table& t3 = c.generate(nullptr);
  EXPECT_EQ(t3.row_count(), t1.row_count());
}

TEST(ControllerSpec, TraceForcesFreshSolve) {
  ControllerSpec c = tiny();
  (void)c.generate(nullptr);
  IncrementalTrace trace;
  (void)c.generate(nullptr, &trace);
  EXPECT_EQ(trace.steps.size(), 3u);
}

TEST(ControllerSpec, MessageTriples) {
  ControllerSpec c = tiny();
  ASSERT_NE(c.input_triple(), nullptr);
  EXPECT_EQ(c.input_triple()->msg, "inmsg");
  auto outs = c.output_triples();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].msg, "out");
}

TEST(ControllerSpec, DomainColumnMismatchRejected) {
  ControllerSpec c("T");
  EXPECT_THROW(
      c.add_column({"a", ColumnKind::kInput},
                   Domain("b", std::vector<std::string>{"x"})),
      SchemaError);
}

TEST(ControllerSpec, AddColumnAfterFinalizationRejected) {
  ControllerSpec c = tiny();
  (void)c.schema();
  EXPECT_THROW(c.add_input("late", {"x"}), SchemaError);
}

TEST(ControllerSpec, BadConstraintReportsContext) {
  ControllerSpec c("T");
  c.add_input("a", {"x"});
  try {
    c.constrain("a", "a = (");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("controller T"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("column a"), std::string::npos);
  }
}

}  // namespace
}  // namespace ccsql
