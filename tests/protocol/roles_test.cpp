#include "protocol/roles.hpp"

#include <gtest/gtest.h>

namespace ccsql {
namespace {

TEST(Roles, Constants) {
  EXPECT_EQ(roles::local().str(), "local");
  EXPECT_EQ(roles::home().str(), "home");
  EXPECT_EQ(roles::remote().str(), "remote");
  EXPECT_TRUE(roles::is_role(roles::home()));
  EXPECT_FALSE(roles::is_role(V("memory")));
  EXPECT_EQ(roles::all().size(), 3u);
}

TEST(QuadPlacement, AllDistinctIsIdentity) {
  for (Value r : roles::all()) {
    EXPECT_EQ(place_role(QuadPlacement::kAllDistinct, r), r);
  }
}

TEST(QuadPlacement, AllSameCollapsesToHome) {
  EXPECT_EQ(place_role(QuadPlacement::kAllSame, roles::local()),
            roles::home());
  EXPECT_EQ(place_role(QuadPlacement::kAllSame, roles::remote()),
            roles::home());
  EXPECT_EQ(place_role(QuadPlacement::kAllSame, roles::home()),
            roles::home());
}

TEST(QuadPlacement, LocalHomeMergesLocal) {
  EXPECT_EQ(place_role(QuadPlacement::kLocalHome, roles::local()),
            roles::home());
  EXPECT_EQ(place_role(QuadPlacement::kLocalHome, roles::remote()),
            roles::remote());
}

TEST(QuadPlacement, HomeRemoteMergesRemote) {
  // The Figure 4 placement: L != H = R maps remote onto home.
  EXPECT_EQ(place_role(QuadPlacement::kHomeRemote, roles::remote()),
            roles::home());
  EXPECT_EQ(place_role(QuadPlacement::kHomeRemote, roles::local()),
            roles::local());
}

TEST(QuadPlacement, LocalRemoteMergesRemoteIntoLocal) {
  EXPECT_EQ(place_role(QuadPlacement::kLocalRemote, roles::remote()),
            roles::local());
  EXPECT_EQ(place_role(QuadPlacement::kLocalRemote, roles::home()),
            roles::home());
}

TEST(QuadPlacement, NonRolesPassThrough) {
  for (QuadPlacement p : kAllPlacements) {
    EXPECT_EQ(place_role(p, V("VC2")), V("VC2"));
    EXPECT_EQ(place_role(p, null_value()), null_value());
  }
}

TEST(QuadPlacement, PlacementIsIdempotent) {
  for (QuadPlacement p : kAllPlacements) {
    for (Value r : roles::all()) {
      EXPECT_EQ(place_role(p, place_role(p, r)), place_role(p, r));
    }
  }
}

TEST(QuadPlacement, ToStringDistinct) {
  std::set<std::string_view> names;
  for (QuadPlacement p : kAllPlacements) names.insert(to_string(p));
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace ccsql
