// ccsql_serve — the high-QPS serving front end over the protocol database.
//
//   ccsql_serve [--sessions N] [--iterations N] [--no-cache]
//               [--max-inflight N] [--writer N] [--script FILE]
//               [--jobs N] [--stats] [-v]
//
// Multiplexes N client sessions over the shared worker pool; each session
// loops the paper's invariant suite (or the --script SELECT list) against
// copy-on-write catalog snapshots, with parsing/planning amortized through
// the prepared-statement cache.  --writer N regenerates a controller table
// N times mid-run to demonstrate that readers never block (and never see a
// torn catalog).  Exit status: 0 clean, 1 violations, 2 usage/setup error.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/pool.hpp"
#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "serve_driver.hpp"

namespace {

int usage() {
  std::cerr << "usage: ccsql_serve [--sessions N] [--iterations N] "
               "[--no-cache] [--max-inflight N] [--writer N] "
               "[--script FILE] [--jobs N] [--stats] [-v]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ccsql::apps::ServeCliOptions opts;
  bool stats = false;
  std::size_t jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next_num = [&](std::size_t& out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0) return false;
      out = static_cast<std::size_t>(v);
      return true;
    };
    if (std::strcmp(a, "--sessions") == 0) {
      if (!next_num(opts.sessions)) return usage();
    } else if (std::strcmp(a, "--iterations") == 0) {
      if (!next_num(opts.iterations)) return usage();
    } else if (std::strcmp(a, "--max-inflight") == 0) {
      if (!next_num(opts.max_inflight)) return usage();
    } else if (std::strcmp(a, "--writer") == 0) {
      if (!next_num(opts.writer_swaps)) return usage();
    } else if (std::strcmp(a, "--jobs") == 0) {
      if (!next_num(jobs) || jobs == 0) return usage();
    } else if (std::strcmp(a, "--script") == 0) {
      if (i + 1 >= argc) return usage();
      opts.script_path = argv[++i];
    } else if (std::strcmp(a, "--no-cache") == 0) {
      opts.use_cache = false;
    } else if (std::strcmp(a, "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(a, "-v") == 0) {
      opts.verbose = true;
    } else {
      return usage();
    }
  }
  if (opts.sessions == 0) return usage();
  if (jobs != 0) ccsql::core::Pool::set_default_jobs(jobs);
  if (stats) ccsql::obs::Tracer::global().enable_metrics();

  int rc = 1;
  try {
    auto spec = ccsql::asura::make_asura();
    rc = ccsql::apps::run_serve(*spec, opts, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 1;
  }
  if (stats) {
    std::cout << ccsql::obs::Tracer::global().metrics().summary();
  }
  ccsql::obs::Tracer::global().finish();
  return rc;
}
