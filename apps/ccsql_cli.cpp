// ccsql — command-line driver for the table-driven protocol methodology.
//
//   ccsql tables [NAME] [--csv]       print controller tables
//   ccsql sql "STMT[; STMT...]"       run SQL against the protocol database
//   ccsql explain "SELECT" [--analyze]
//                                     show the optimized query plan with
//                                     estimated vs actual row counts;
//                                     --analyze adds per-operator wall time,
//                                     rows/batches/morsels, and memory
//   ccsql invariants [-v]             run the invariant suite
//   ccsql deadlock [ASSIGNMENT]       virtual-channel deadlock analysis
//   ccsql map                         section 5 hardware-mapping flow
//   ccsql codegen TABLE [--casez]     emit controller code from an
//                                     implementation table
//   ccsql sim [ASSIGNMENT] [--fig4] [--quads N] [--addrs N] [--txns N]
//         [--seed N] [--workload NAME] [--no-dense]
//                                     table-driven simulation (dense
//                                     dispatch; --no-dense for the hashed
//                                     TableIndex baseline), reporting
//                                     events/sec
//   ccsql reach [ASSIGNMENT] [--quads N] [--addrs N] [--ops N]
//         [--symmetry] [--classify] [--witness] [--sequential]
//                                     exhaustive exploration: parallel
//                                     symmetry-reduced explorer by default
//                                     (--sequential for the string-keyed
//                                     oracle), --classify labels VCG cycles
//                                     against the reachable states
//   ccsql flow                        the full push-button report
//
// Global flags (any command):
//   --trace FILE               write a trace (format from extension)
//   --trace-format FMT         text | jsonl | chrome
//   --metrics                  collect + print the metrics summary
//   --stats                    end-of-run one-page summary: top counters,
//                              histogram p50/p95/max, pool utilization,
//                              memory accounting (no trace file needed)
//   --no-planner               run every query through the naive executor
//                              (CCSQL_NO_PLANNER=1 does the same)
//   --no-bytecode              evaluate predicates with the interpreted
//                              expression walk instead of the vectorized
//                              bytecode engine (CCSQL_NO_BYTECODE=1 does
//                              the same); results are identical
//   --jobs N                   parallel lanes for query execution, the
//                              invariant suite, and VCG composition
//                              (CCSQL_JOBS=N does the same; default:
//                              hardware concurrency).  Results are
//                              identical at any N.
// CCSQL_TRACE / CCSQL_TRACE_FORMAT / CCSQL_METRICS=1 / CCSQL_JOBS in the
// environment do the same.
//
// All commands operate on the built-in ASURA reconstruction.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ccsql.hpp"
#include "checks/lint.hpp"
#include "checks/reach.hpp"
#include "core/flow.hpp"
#include "core/pool.hpp"
#include "mapping/codegen.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "plan/planner.hpp"
#include "protocol/asura/asura.hpp"
#include "serve_driver.hpp"
#include "sim/machine.hpp"

namespace {

using namespace ccsql;

struct Args {
  std::vector<std::string> positional;
  std::vector<std::string> flags;

  [[nodiscard]] bool has(const std::string& f) const {
    for (const auto& x : flags) {
      if (x == f) return true;
    }
    return false;
  }
  [[nodiscard]] int value_of(const std::string& f, int fallback) const {
    for (std::size_t i = 0; i + 1 < flags.size(); ++i) {
      if (flags[i] == f) return std::stoi(flags[i + 1]);
    }
    return fallback;
  }
  [[nodiscard]] std::string str_value_of(const std::string& f,
                                         const std::string& fallback) const {
    for (std::size_t i = 0; i + 1 < flags.size(); ++i) {
      if (flags[i] == f) return flags[i + 1];
    }
    return fallback;
  }
};

int usage() {
  std::cerr
      << "usage: ccsql COMMAND [ARGS]\n"
         "  tables [NAME] [--csv]    print controller tables\n"
         "  sql \"STMT[; ...]\"        run SQL against the protocol database\n"
         "  explain \"SELECT\" [--analyze]  show the optimized query plan\n"
         "  invariants [-v]          run the invariant suite\n"
         "  deadlock [ASSIGNMENT]    deadlock analysis (default: all)\n"
         "  map                      hardware-mapping flow\n"
         "  codegen TABLE [--casez]  emit code from an implementation table\n"
         "  sim [ASSIGNMENT] [--fig4] [--quads N] [--addrs N] [--txns N]\n"
         "      [--seed N] [--workload NAME] [--no-dense]\n"
         "                           table-driven simulation; workloads:\n"
         "                           random, lock, producer-consumer,\n"
         "                           false-sharing, streaming; --no-dense\n"
         "                           uses the hashed TableIndex baseline\n"
         "  reach [ASSIGNMENT] [--quads N] [--addrs N] [--ops N]\n"
         "        [--symmetry] [--classify] [--witness] [--sequential]\n"
         "        [--max-states N] [--first-deadlock]\n"
         "        [--only-ops A,B] [--node-ops N,M]\n"
         "                           parallel reachability (sharded visited\n"
         "                           set, deterministic at any --jobs);\n"
         "                           --symmetry canonicalizes modulo quad/\n"
         "                           address permutations, --classify labels\n"
         "                           each VCG cycle reachable/unreachable,\n"
         "                           --witness prints the deadlock trace\n"
         "  lint                     specification hygiene advisories\n"
         "  serve [--sessions N] [--iterations N] [--no-cache]\n"
         "        [--max-inflight N] [--writer N] [--script FILE] [-v]\n"
         "                           multi-session serving loop (invariant\n"
         "                           suite or a SQL script) over snapshots +\n"
         "                           the prepared-statement cache\n"
         "  flow                     full push-button report\n"
         "global flags: --trace FILE [--trace-format text|jsonl|chrome] "
         "--metrics --stats --no-planner --no-bytecode --jobs N\n";
  return 2;
}

int cmd_tables(const ProtocolSpec& spec, const Args& args) {
  const Database& db = spec.database();
  if (!args.positional.empty()) {
    const Table& t = db.get(args.positional[0]);
    std::cout << (args.has("--csv") ? to_csv(t) : to_ascii(t));
    return 0;
  }
  for (const auto& c : spec.controllers()) {
    const Table& t = db.get(c->name());
    std::cout << c->name() << ": " << t.row_count() << " rows x "
              << t.column_count() << " cols\n";
  }
  std::cout << "Messages: " << spec.messages().size() << " types\n";
  return 0;
}

int cmd_sql(const ProtocolSpec& spec, const Args& args) {
  if (args.positional.empty()) return usage();
  // A private mutable copy of the session so CREATE/INSERT/DROP work.
  Database db = spec.database();
  std::stringstream statements(args.positional[0]);
  std::string stmt;
  while (std::getline(statements, stmt, ';')) {
    if (stmt.find_first_not_of(" \t\n") == std::string::npos) continue;
    Table result = db.execute(stmt);
    if (result.column_count() > 0) std::cout << to_ascii(result);
  }
  return 0;
}

int cmd_explain(const ProtocolSpec& spec, const Args& args) {
  if (args.positional.empty()) return usage();
  const Database& db = spec.database();
  std::cout << (args.has("--analyze")
                    ? db.explain_analyze(args.positional[0])
                    : db.explain(args.positional[0]))
                   .plan;
  return 0;
}

int cmd_invariants(const ProtocolSpec& spec, const Args& args) {
  InvariantChecker checker(spec.database());
  auto results = checker.check_all(spec.invariants());
  std::cout << InvariantChecker::report(results, args.has("-v"));
  return InvariantChecker::all_hold(results) ? 0 : 1;
}

int cmd_deadlock(const ProtocolSpec& spec, const Args& args) {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : spec.controllers()) {
    refs.push_back(
        ControllerTableRef::from_spec(*c, spec.database().get(c->name())));
  }
  bool any_cycles = false;
  for (const auto& a : spec.assignments()) {
    if (!args.positional.empty() && a->name() != args.positional[0]) continue;
    DeadlockAnalysis analysis(refs, *a);
    std::cout << "=== assignment " << a->name() << " ===\n"
              << analysis.report() << "\n";
    any_cycles |= !analysis.deadlock_free();
  }
  return any_cycles ? 1 : 0;
}

int cmd_map(const ProtocolSpec& spec, const Args&) {
  auto report = mapping::verify_directory_mapping(spec);
  std::cout << "ED: " << report.ed_rows << " rows x " << report.ed_cols
            << " cols\n";
  for (const auto& [name, rows] : report.table_rows) {
    std::cout << "  " << name << ": " << rows << " rows\n";
  }
  std::cout << "ED reconstructed: " << report.ed_reconstructed
            << "\ndebugged table recovered: " << report.base_recovered
            << "\ncontainment check: " << report.contains_debugged << "\n";
  return report.ok() ? 0 : 1;
}

int cmd_codegen(const ProtocolSpec& spec, const Args& args) {
  if (args.positional.empty()) return usage();
  ControllerSpec ed_spec = mapping::make_extended_directory(spec);
  const Table& ed = ed_spec.generate(&spec.database().functions());
  auto parts = mapping::partition_directory(ed, spec.database().functions());
  for (const auto& p : parts) {
    if (p.name != args.positional[0]) continue;
    const auto dialect = args.has("--casez") ? mapping::CodeDialect::kCasez
                                             : mapping::CodeDialect::kCxx;
    std::cout << mapping::generate_value_declarations(p.table, p.name)
              << "\n"
              << mapping::generate_code(p.table, p.name, dialect);
    return 0;
  }
  std::cerr << "unknown implementation table: " << args.positional[0]
            << " (try Request_remmsg, Response_dir, ...)\n";
  return 2;
}

int cmd_sim(const ProtocolSpec& spec, const Args& args) {
  const std::string assignment =
      args.positional.empty() ? asura::kAssignV5Fix : args.positional[0];
  sim::SimConfig cfg;
  cfg.n_quads = args.value_of("--quads", 4);
  cfg.n_addrs = args.value_of("--addrs", cfg.n_quads * 2);
  cfg.channel_capacity = args.value_of("--capacity", 2);
  cfg.transactions_per_node = args.value_of("--txns", 100);
  cfg.seed = static_cast<unsigned>(args.value_of("--seed", 1));
  cfg.dense_dispatch = !args.has("--no-dense");
  if (const std::string wl = args.str_value_of("--workload", "");
      !wl.empty()) {
    const auto parsed = sim::parse_workload(wl);
    if (!parsed) {
      std::cerr << "unknown workload '" << wl
                << "' (random, lock, producer-consumer, false-sharing, "
                   "streaming)\n";
      return 2;
    }
    cfg.workload = *parsed;
  }

  if (args.has("--fig4")) {
    cfg.n_quads = 3;
    cfg.n_addrs = 6;
    cfg.channel_capacity = 1;
    sim::Machine m(spec, spec.assignment(assignment), cfg);
    m.set_memory_latency(16);
    m.set_line(2, "MESI", {2});
    m.set_line(5, "MESI", {0});
    m.script(0, "pwb", 5);
    m.script(1, "pwr", 2);
    sim::SimResult r = m.run();
    std::cout << "fig4 under " << assignment << ": "
              << (r.deadlocked ? "DEADLOCK" : (r.completed ? "completed"
                                                           : "stalled"))
              << " in " << r.steps << " steps\n"
              << r.deadlock_report;
    return r.deadlocked ? 1 : 0;
  }

  sim::Machine m(spec, spec.assignment(assignment), cfg);
  m.set_memory_latency(args.value_of("--latency", 2));
  m.enable_workload();
  sim::SimResult r = m.run();
  std::cout << "completed=" << r.completed << " deadlocked=" << r.deadlocked
            << " steps=" << r.steps << " transactions="
            << r.transactions_done << " errors=" << r.errors.size()
            << " workload=" << sim::workload_name(cfg.workload)
            << " dispatch=" << (cfg.dense_dispatch ? "dense" : "hashed")
            << " events/sec=" << r.events_per_sec() << "\n";
  for (const auto& e : r.errors) std::cout << "  " << e << "\n";
  if (r.deadlocked) std::cout << r.deadlock_report;
  if (args.has("--metrics")) std::cout << r.counters.summary();
  return r.healthy() ? 0 : 1;
}

int cmd_reach(const ProtocolSpec& spec, const Args& args) {
  const std::string assignment =
      args.positional.empty() ? asura::kAssignV5Fix : args.positional[0];
  ReachParallelConfig cfg;
  cfg.n_quads = args.value_of("--quads", 2);
  cfg.n_addrs = args.value_of("--addrs", 1);
  cfg.ops_per_node = args.value_of("--ops", 2);
  cfg.max_states =
      static_cast<std::uint64_t>(args.value_of("--max-states", 2000000));
  cfg.stop_at_first_deadlock = args.has("--first-deadlock");
  cfg.symmetry = args.has("--symmetry");
  // Directed exploration: comma-separated op names / per-node budgets.
  if (const std::string ops = args.str_value_of("--only-ops", "");
      !ops.empty()) {
    std::istringstream ss(ops);
    for (std::string tok; std::getline(ss, tok, ',');) {
      if (!tok.empty()) cfg.inject_ops.push_back(tok);
    }
  }
  if (const std::string budgets = args.str_value_of("--node-ops", "");
      !budgets.empty()) {
    std::istringstream ss(budgets);
    for (std::string tok; std::getline(ss, tok, ',');) {
      if (!tok.empty()) cfg.ops_by_node.push_back(std::stoi(tok));
    }
  }

  if (args.has("--sequential")) {
    ReachResult r = explore(spec, spec.assignment(assignment), cfg);
    std::cout << "states=" << r.states << " transitions=" << r.transitions
              << " complete=" << r.complete
              << " deadlock_states=" << r.deadlock_states
              << " violations=" << r.violations.size() << " ("
              << r.seconds << "s)\n";
    for (const auto& v : r.violations) std::cout << "  " << v << "\n";
    if (r.deadlock_states > 0) std::cout << r.deadlock_example;
    return r.verified() ? 0 : 1;
  }

  ReachParallelResult r =
      explore_parallel(spec, spec.assignment(assignment), cfg);
  std::cout << "states=" << r.states << " transitions=" << r.transitions
            << " complete=" << r.complete
            << " deadlock_states=" << r.deadlock_states
            << " violations=" << r.violations.size()
            << " waves=" << r.waves << " dedup=" << r.dedup_hits
            << " canon=" << r.canon_group << " (" << r.seconds << "s)\n";
  for (const auto& v : r.violations) std::cout << "  " << v << "\n";
  if (r.deadlock_states > 0) {
    std::cout << r.deadlock_example;
    std::cout << "witness: " << r.deadlock_trace.size()
              << " actions to the first deadlock\n";
    if (args.has("--witness")) {
      for (const auto& act : r.deadlock_trace) {
        std::cout << "  " << act.to_string() << "\n";
      }
    }
  }

  if (args.has("--classify")) {
    std::vector<ControllerTableRef> refs;
    for (const auto& c : spec.controllers()) {
      refs.push_back(
          ControllerTableRef::from_spec(*c, spec.database().get(c->name())));
    }
    DeadlockAnalysis analysis(refs, spec.assignment(assignment));
    std::cout << "cycle classification:\n"
              << format_classification(classify_cycles(
                     spec, spec.assignment(assignment), analysis.cycles(),
                     cfg));
  }
  return r.verified() ? 0 : 1;
}

int cmd_lint(const ProtocolSpec& spec, const Args&) {
  auto findings = lint(spec, asura::processor_sinks());
  std::cout << lint_report(findings);
  return 0;
}

int cmd_serve(const ProtocolSpec& spec, const Args& args) {
  apps::ServeCliOptions opts;
  opts.sessions =
      static_cast<std::size_t>(args.value_of("--sessions", 8));
  opts.iterations =
      static_cast<std::size_t>(args.value_of("--iterations", 1));
  opts.use_cache = !args.has("--no-cache");
  opts.max_inflight =
      static_cast<std::size_t>(args.value_of("--max-inflight", 0));
  opts.writer_swaps = static_cast<std::size_t>(args.value_of("--writer", 0));
  opts.script_path = args.str_value_of("--script", "");
  opts.verbose = args.has("-v");
  if (opts.sessions == 0) return usage();
  return apps::run_serve(spec, opts, std::cout);
}

int cmd_flow(const ProtocolSpec& spec, const Args&) {
  Flow flow(spec);
  FlowOptions opts;
  opts.map_directory = true;
  FlowReport report = flow.run(opts);
  std::cout << report.summary();
  std::cout << "debugged under " << asura::kAssignV5Fix << ": "
            << report.debugged(asura::kAssignV5Fix) << "\n";
  return report.debugged(asura::kAssignV5Fix) ? 0 : 1;
}

/// Installs the sink / metrics requested by --trace/--trace-format/--metrics
/// (the CCSQL_TRACE environment path is handled by Tracer::global() itself).
int configure_observability(const Args& args) {
  auto& tracer = obs::Tracer::global();
  if (args.has("--trace")) {
    const std::string path = args.str_value_of("--trace", "");
    if (path.empty()) {
      std::cerr << "error: --trace needs a file path\n";
      return 2;
    }
    obs::Format format = obs::format_for_path(path);
    if (args.has("--trace-format")) {
      auto parsed = obs::parse_format(args.str_value_of("--trace-format", ""));
      if (!parsed) {
        std::cerr << "error: --trace-format must be text, jsonl or chrome\n";
        return 2;
      }
      format = *parsed;
    }
    tracer.set_sink(obs::open_trace_file(path, format));
  }
  if (args.has("--metrics") || args.has("--stats")) tracer.enable_metrics();
  if (args.has("--no-planner")) plan::set_planner_enabled(false);
  if (args.has("--no-bytecode")) set_bytecode_enabled(false);
  if (args.has("--jobs")) {
    const int jobs = args.value_of("--jobs", 0);
    if (jobs < 1) {
      std::cerr << "error: --jobs needs a positive thread count\n";
      return 2;
    }
    // Before any parallel region, so the global pool is sized to match.
    core::Pool::set_default_jobs(static_cast<std::size_t>(jobs));
  }
  return 0;
}

/// End-of-run one-page summary for --stats: the top counters, histogram
/// p50/p95/max, pool utilization, and memory accounting — no trace file
/// needed.
void print_stats_page(std::ostream& os) {
  obs::Metrics& metrics = obs::Tracer::global().metrics();
  core::Pool::global().publish_stats(metrics);
  obs::MemTracker::global().publish(metrics);

  os << "=== run stats ===\n";
  auto counters = metrics.counters();
  if (!counters.empty()) {
    std::vector<std::pair<std::string, std::uint64_t>> ranked(
        counters.begin(), counters.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (ranked.size() > 12) ranked.resize(12);
    os << "top counters:\n";
    for (const auto& [name, value] : ranked) {
      os << "  " << name << " = " << value << "\n";
    }
  }
  auto hists = metrics.histograms();
  if (!hists.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : hists) {
      os << "  " << name << "  count=" << h.count << " p50=" << h.percentile(0.5)
         << " p95=" << h.percentile(0.95) << " max=" << h.max << "\n";
    }
  }
  os << core::Pool::global().stats().summary() << "\n";
  os << obs::MemTracker::global().summary() << "\n";
  // Serving-layer digest, present only when a serve::Server published.
  if (const std::uint64_t serve_queries = metrics.counter("serve.queries");
      serve_queries != 0) {
    os << "serve: queries=" << serve_queries << " (uncached "
       << metrics.counter("serve.uncached_queries") << ")  plan_cache hits="
       << metrics.counter("serve.plan_cache.hits")
       << " misses=" << metrics.counter("serve.plan_cache.misses")
       << " evictions=" << metrics.counter("serve.plan_cache.evictions")
       << " entries=" << metrics.counter("serve.plan_cache.entries")
       << "  snapshot.active=" << metrics.counter("serve.snapshot.active")
       << "\n";
  }
}

int dispatch(const std::string& cmd, const Args& args) {
  auto spec = ccsql::asura::make_asura();
  if (cmd == "tables") return cmd_tables(*spec, args);
  if (cmd == "sql") return cmd_sql(*spec, args);
  if (cmd == "explain") return cmd_explain(*spec, args);
  if (cmd == "invariants") return cmd_invariants(*spec, args);
  if (cmd == "deadlock") return cmd_deadlock(*spec, args);
  if (cmd == "map") return cmd_map(*spec, args);
  if (cmd == "codegen") return cmd_codegen(*spec, args);
  if (cmd == "sim") return cmd_sim(*spec, args);
  if (cmd == "reach") return cmd_reach(*spec, args);
  if (cmd == "lint") return cmd_lint(*spec, args);
  if (cmd == "serve") return cmd_serve(*spec, args);
  if (cmd == "flow") return cmd_flow(*spec, args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  for (int i = 2; i < argc; ++i) {
    if (argv[i][0] == '-') {
      const std::string flag = argv[i];
      args.flags.emplace_back(flag);
      const bool string_valued = flag == "--trace" ||
                                 flag == "--trace-format" ||
                                 flag == "--script" ||
                                 flag == "--only-ops" ||
                                 flag == "--node-ops" ||
                                 flag == "--workload";
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        if (string_valued) {
          args.flags.emplace_back(argv[++i]);
          continue;
        }
        // A numeric flag value follows.
        char* end = nullptr;
        (void)std::strtol(argv[i + 1], &end, 10);
        if (end != argv[i + 1] && *end == '\0') {
          args.flags.emplace_back(argv[++i]);
        }
      }
    } else {
      args.positional.emplace_back(argv[i]);
    }
  }

  const std::string cmd = argv[1];
  // Flushes and closes the trace sink however main unwinds — error returns,
  // thrown exceptions — so JSONL/Chrome traces are never truncated
  // mid-event.  finish() is idempotent: the explicit call below makes the
  // guard a no-op on the normal path.
  struct TraceFlushGuard {
    ~TraceFlushGuard() { obs::Tracer::global().finish(); }
  } flush_guard;
  int rc = 1;
  try {
    rc = configure_observability(args);
    if (rc == 0) rc = dispatch(cmd, args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 1;
  } catch (...) {
    std::cerr << "error: unknown exception\n";
    rc = 1;
  }
  auto& tracer = obs::Tracer::global();
  const bool print_metrics = tracer.metrics_enabled();
  if (args.has("--stats")) print_stats_page(std::cout);
  tracer.finish();  // flush + close the trace before the process exits
  if (print_metrics && !args.has("--stats")) {
    std::cout << tracer.metrics().summary();
  }
  return rc;
}
