#pragma once

// Shared implementation of the serving front end: `ccsql serve` and the
// standalone ccsql_serve binary both parse flags into ServeCliOptions and
// call run_serve, which stands up a serve::Server over the protocol
// database, drives N concurrent sessions (invariant suite by default, or a
// SQL script), and prints the throughput/latency/cache report.

#include <iosfwd>
#include <string>

#include "protocol/protocol_spec.hpp"

namespace ccsql::apps {

struct ServeCliOptions {
  std::size_t sessions = 8;      // --sessions
  std::size_t iterations = 1;    // --iterations (loops per session)
  bool use_cache = true;         // --no-cache turns the plan cache off
  std::size_t max_inflight = 0;  // --max-inflight (0 = unlimited)
  std::size_t writer_swaps = 0;  // --writer N: concurrent regenerations
  std::string script_path;       // --script FILE: SELECTs, one per line
  bool verbose = false;          // -v: per-session lines
};

/// Runs the workload and prints the report to `os`.  Returns 0 when every
/// statement behaved (invariants empty / script queries succeeded), 1 on
/// violations, 2 on setup errors (unreadable script).
int run_serve(const ProtocolSpec& spec, const ServeCliOptions& opts,
              std::ostream& os);

}  // namespace ccsql::apps
