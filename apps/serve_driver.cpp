#include "serve_driver.hpp"

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace ccsql::apps {

int run_serve(const ProtocolSpec& spec, const ServeCliOptions& opts,
              std::ostream& os) {
  // Workload: the paper's invariant suite (exists mode), or a SQL script
  // of SELECTs, one per line ('#' comments and blank lines skipped).
  std::vector<std::string> statements;
  bool exists_mode = true;
  if (!opts.script_path.empty()) {
    std::ifstream in(opts.script_path);
    if (!in) {
      os << "serve: cannot open script " << opts.script_path << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      statements.push_back(line);
    }
    exists_mode = false;
  } else {
    for (const auto& inv : spec.invariants()) statements.push_back(inv.sql);
  }
  if (statements.empty()) {
    os << "serve: nothing to run\n";
    return 2;
  }

  serve::ServerOptions server_opts;
  server_opts.use_plan_cache = opts.use_cache;
  server_opts.max_inflight = opts.max_inflight;
  serve::Server server(spec.database(), server_opts);

  serve::DriveOptions drive_opts;
  drive_opts.sessions = opts.sessions;
  drive_opts.iterations = opts.iterations;
  drive_opts.exists_mode = exists_mode;
  drive_opts.writer_swaps = opts.writer_swaps;
  if (opts.writer_swaps > 0) {
    drive_opts.writer_table = spec.controllers().front()->name();
  }

  serve::DriveReport report = serve::drive(server, statements, drive_opts);
  const serve::ServerStats stats = server.stats();

  os << "serve: " << opts.sessions << " sessions x " << opts.iterations
     << " iterations over " << statements.size()
     << (exists_mode ? " invariants" : " queries") << " (cache "
     << (opts.use_cache ? "on" : "off");
  if (opts.max_inflight > 0) os << ", max-inflight " << opts.max_inflight;
  os << ")\n";
  os << "  queries=" << report.queries << " violations=" << report.violations
     << " wall=" << report.wall_us / 1000 << "ms qps=" << std::uint64_t(
            report.qps())
     << " p50=" << report.latency_percentile_us(0.5)
     << "us p95=" << report.latency_percentile_us(0.95) << "us\n";
  os << "  plan_cache: hits=" << stats.cache.hits
     << " misses=" << stats.cache.misses
     << " evictions=" << stats.cache.evictions
     << " invalidations=" << stats.cache.invalidations
     << " entries=" << stats.cache.entries << "\n";
  if (opts.writer_swaps > 0) {
    os << "  writer: swaps=" << report.writer_swaps
       << " generation=" << stats.generation
       << " admission_waits=" << stats.admission_waits << "\n";
  }
  if (opts.verbose) {
    for (const auto& s : report.sessions) {
      os << "  session " << s.id << ": queries=" << s.queries
         << " violations=" << s.violations << " run=" << s.run_us / 1000
         << "ms\n";
    }
  }

  // Make the run observable: serve.* gauges land in the process metrics
  // registry (the --stats page reads them there, and a tracing run
  // flushes them as counter events for trace_summary's serve digest).
  if (obs::Tracer::global().enabled()) {
    server.publish_stats(obs::Tracer::global().metrics());
  }
  return report.violations == 0 ? 0 : 1;
}

}  // namespace ccsql::apps
