# Guard script run as a ctest: fails when any file under a build tree is
# tracked by git.  Build trees are generated artifacts; committing one
# bloats the repo and breaks out-of-source configure on other machines.
# Expects -DGIT_EXECUTABLE=... -DREPO_DIR=...
execute_process(
  COMMAND "${GIT_EXECUTABLE}" -C "${REPO_DIR}" ls-files "build/" "build-*/"
  OUTPUT_VARIABLE tracked
  RESULT_VARIABLE status
  OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT status EQUAL 0)
  # Not a git checkout (e.g. a source tarball): nothing to guard.
  return()
endif()
if(NOT tracked STREQUAL "")
  message(FATAL_ERROR
    "build tree files are tracked by git (add them to .gitignore and "
    "`git rm --cached` them):\n${tracked}")
endif()
