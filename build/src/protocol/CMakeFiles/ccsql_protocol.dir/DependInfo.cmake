
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/asura/asura.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/asura.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/asura.cpp.o.d"
  "/root/repo/src/protocol/asura/cache.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/cache.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/cache.cpp.o.d"
  "/root/repo/src/protocol/asura/channels.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/channels.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/channels.cpp.o.d"
  "/root/repo/src/protocol/asura/directory.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/directory.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/directory.cpp.o.d"
  "/root/repo/src/protocol/asura/intc.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/intc.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/intc.cpp.o.d"
  "/root/repo/src/protocol/asura/invariants.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/invariants.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/invariants.cpp.o.d"
  "/root/repo/src/protocol/asura/io.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/io.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/io.cpp.o.d"
  "/root/repo/src/protocol/asura/memory.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/memory.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/memory.cpp.o.d"
  "/root/repo/src/protocol/asura/messages.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/messages.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/messages.cpp.o.d"
  "/root/repo/src/protocol/asura/node.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/node.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/node.cpp.o.d"
  "/root/repo/src/protocol/asura/rac.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/rac.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/rac.cpp.o.d"
  "/root/repo/src/protocol/asura/rsnoop.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/rsnoop.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/asura/rsnoop.cpp.o.d"
  "/root/repo/src/protocol/channel_assignment.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/channel_assignment.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/channel_assignment.cpp.o.d"
  "/root/repo/src/protocol/controller_spec.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/controller_spec.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/controller_spec.cpp.o.d"
  "/root/repo/src/protocol/message.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/message.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/message.cpp.o.d"
  "/root/repo/src/protocol/protocol_spec.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/protocol_spec.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/protocol_spec.cpp.o.d"
  "/root/repo/src/protocol/roles.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/roles.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/roles.cpp.o.d"
  "/root/repo/src/protocol/snoopbus/snoopbus.cpp" "src/protocol/CMakeFiles/ccsql_protocol.dir/snoopbus/snoopbus.cpp.o" "gcc" "src/protocol/CMakeFiles/ccsql_protocol.dir/snoopbus/snoopbus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/ccsql_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/ccsql_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ccsql_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
