# Empty dependencies file for ccsql_protocol.
# This may be replaced when dependencies are built.
