file(REMOVE_RECURSE
  "libccsql_protocol.a"
)
