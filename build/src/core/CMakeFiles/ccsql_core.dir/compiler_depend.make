# Empty compiler generated dependencies file for ccsql_core.
# This may be replaced when dependencies are built.
