file(REMOVE_RECURSE
  "CMakeFiles/ccsql_core.dir/flow.cpp.o"
  "CMakeFiles/ccsql_core.dir/flow.cpp.o.d"
  "libccsql_core.a"
  "libccsql_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
