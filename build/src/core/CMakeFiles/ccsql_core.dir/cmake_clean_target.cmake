file(REMOVE_RECURSE
  "libccsql_core.a"
)
