file(REMOVE_RECURSE
  "CMakeFiles/ccsql_solver.dir/generator.cpp.o"
  "CMakeFiles/ccsql_solver.dir/generator.cpp.o.d"
  "libccsql_solver.a"
  "libccsql_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
