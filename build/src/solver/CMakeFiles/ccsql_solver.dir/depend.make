# Empty dependencies file for ccsql_solver.
# This may be replaced when dependencies are built.
