file(REMOVE_RECURSE
  "libccsql_solver.a"
)
