
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/domain.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/domain.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/domain.cpp.o.d"
  "/root/repo/src/relational/expr.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/expr.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/expr.cpp.o.d"
  "/root/repo/src/relational/format.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/format.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/format.cpp.o.d"
  "/root/repo/src/relational/function_registry.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/function_registry.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/function_registry.cpp.o.d"
  "/root/repo/src/relational/lexer.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/lexer.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/lexer.cpp.o.d"
  "/root/repo/src/relational/parser.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/parser.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/parser.cpp.o.d"
  "/root/repo/src/relational/query.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/query.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/query.cpp.o.d"
  "/root/repo/src/relational/schema.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/schema.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/schema.cpp.o.d"
  "/root/repo/src/relational/symbol.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/symbol.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/symbol.cpp.o.d"
  "/root/repo/src/relational/table.cpp" "src/relational/CMakeFiles/ccsql_relational.dir/table.cpp.o" "gcc" "src/relational/CMakeFiles/ccsql_relational.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/ccsql_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
