file(REMOVE_RECURSE
  "CMakeFiles/ccsql_relational.dir/domain.cpp.o"
  "CMakeFiles/ccsql_relational.dir/domain.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/expr.cpp.o"
  "CMakeFiles/ccsql_relational.dir/expr.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/format.cpp.o"
  "CMakeFiles/ccsql_relational.dir/format.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/function_registry.cpp.o"
  "CMakeFiles/ccsql_relational.dir/function_registry.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/lexer.cpp.o"
  "CMakeFiles/ccsql_relational.dir/lexer.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/parser.cpp.o"
  "CMakeFiles/ccsql_relational.dir/parser.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/query.cpp.o"
  "CMakeFiles/ccsql_relational.dir/query.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/schema.cpp.o"
  "CMakeFiles/ccsql_relational.dir/schema.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/symbol.cpp.o"
  "CMakeFiles/ccsql_relational.dir/symbol.cpp.o.d"
  "CMakeFiles/ccsql_relational.dir/table.cpp.o"
  "CMakeFiles/ccsql_relational.dir/table.cpp.o.d"
  "libccsql_relational.a"
  "libccsql_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
