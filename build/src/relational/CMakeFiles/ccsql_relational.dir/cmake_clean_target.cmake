file(REMOVE_RECURSE
  "libccsql_relational.a"
)
