# Empty compiler generated dependencies file for ccsql_relational.
# This may be replaced when dependencies are built.
