# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("relational")
subdirs("solver")
subdirs("protocol")
subdirs("checks")
subdirs("mapping")
subdirs("sim")
subdirs("core")
