# Empty dependencies file for ccsql_checks.
# This may be replaced when dependencies are built.
