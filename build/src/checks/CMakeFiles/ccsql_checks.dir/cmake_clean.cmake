file(REMOVE_RECURSE
  "CMakeFiles/ccsql_checks.dir/invariant.cpp.o"
  "CMakeFiles/ccsql_checks.dir/invariant.cpp.o.d"
  "CMakeFiles/ccsql_checks.dir/lint.cpp.o"
  "CMakeFiles/ccsql_checks.dir/lint.cpp.o.d"
  "CMakeFiles/ccsql_checks.dir/reach.cpp.o"
  "CMakeFiles/ccsql_checks.dir/reach.cpp.o.d"
  "CMakeFiles/ccsql_checks.dir/vcg.cpp.o"
  "CMakeFiles/ccsql_checks.dir/vcg.cpp.o.d"
  "libccsql_checks.a"
  "libccsql_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
