file(REMOVE_RECURSE
  "libccsql_checks.a"
)
