file(REMOVE_RECURSE
  "libccsql_sim.a"
)
