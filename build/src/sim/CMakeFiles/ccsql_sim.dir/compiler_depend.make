# Empty compiler generated dependencies file for ccsql_sim.
# This may be replaced when dependencies are built.
