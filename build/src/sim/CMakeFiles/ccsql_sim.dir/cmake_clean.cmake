file(REMOVE_RECURSE
  "CMakeFiles/ccsql_sim.dir/machine.cpp.o"
  "CMakeFiles/ccsql_sim.dir/machine.cpp.o.d"
  "CMakeFiles/ccsql_sim.dir/network.cpp.o"
  "CMakeFiles/ccsql_sim.dir/network.cpp.o.d"
  "CMakeFiles/ccsql_sim.dir/table_index.cpp.o"
  "CMakeFiles/ccsql_sim.dir/table_index.cpp.o.d"
  "libccsql_sim.a"
  "libccsql_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
