file(REMOVE_RECURSE
  "CMakeFiles/ccsql_mapping.dir/asura_map.cpp.o"
  "CMakeFiles/ccsql_mapping.dir/asura_map.cpp.o.d"
  "CMakeFiles/ccsql_mapping.dir/codegen.cpp.o"
  "CMakeFiles/ccsql_mapping.dir/codegen.cpp.o.d"
  "CMakeFiles/ccsql_mapping.dir/extend.cpp.o"
  "CMakeFiles/ccsql_mapping.dir/extend.cpp.o.d"
  "libccsql_mapping.a"
  "libccsql_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
