file(REMOVE_RECURSE
  "libccsql_mapping.a"
)
