# Empty dependencies file for ccsql_mapping.
# This may be replaced when dependencies are built.
