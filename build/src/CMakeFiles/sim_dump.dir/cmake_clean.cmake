file(REMOVE_RECURSE
  "CMakeFiles/sim_dump.dir/__/tools/sim_dump.cpp.o"
  "CMakeFiles/sim_dump.dir/__/tools/sim_dump.cpp.o.d"
  "sim_dump"
  "sim_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
