# Empty dependencies file for sim_dump.
# This may be replaced when dependencies are built.
