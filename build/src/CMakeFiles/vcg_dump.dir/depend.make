# Empty dependencies file for vcg_dump.
# This may be replaced when dependencies are built.
