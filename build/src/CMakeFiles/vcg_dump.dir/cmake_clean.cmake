file(REMOVE_RECURSE
  "CMakeFiles/vcg_dump.dir/__/tools/vcg_dump.cpp.o"
  "CMakeFiles/vcg_dump.dir/__/tools/vcg_dump.cpp.o.d"
  "vcg_dump"
  "vcg_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcg_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
