file(REMOVE_RECURSE
  "CMakeFiles/sim_debug.dir/__/tools/sim_debug.cpp.o"
  "CMakeFiles/sim_debug.dir/__/tools/sim_debug.cpp.o.d"
  "sim_debug"
  "sim_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
