# Empty compiler generated dependencies file for sim_debug.
# This may be replaced when dependencies are built.
