file(REMOVE_RECURSE
  "CMakeFiles/asura_dump.dir/__/tools/asura_dump.cpp.o"
  "CMakeFiles/asura_dump.dir/__/tools/asura_dump.cpp.o.d"
  "asura_dump"
  "asura_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asura_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
