# Empty compiler generated dependencies file for asura_dump.
# This may be replaced when dependencies are built.
