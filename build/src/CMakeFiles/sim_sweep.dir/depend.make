# Empty dependencies file for sim_sweep.
# This may be replaced when dependencies are built.
