file(REMOVE_RECURSE
  "CMakeFiles/sim_sweep.dir/__/tools/sim_sweep.cpp.o"
  "CMakeFiles/sim_sweep.dir/__/tools/sim_sweep.cpp.o.d"
  "sim_sweep"
  "sim_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
