# Empty compiler generated dependencies file for mapping_dump.
# This may be replaced when dependencies are built.
