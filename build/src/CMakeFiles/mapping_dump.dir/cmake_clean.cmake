file(REMOVE_RECURSE
  "CMakeFiles/mapping_dump.dir/__/tools/mapping_dump.cpp.o"
  "CMakeFiles/mapping_dump.dir/__/tools/mapping_dump.cpp.o.d"
  "mapping_dump"
  "mapping_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
