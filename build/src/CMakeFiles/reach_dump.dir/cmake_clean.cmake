file(REMOVE_RECURSE
  "CMakeFiles/reach_dump.dir/__/tools/reach_dump.cpp.o"
  "CMakeFiles/reach_dump.dir/__/tools/reach_dump.cpp.o.d"
  "reach_dump"
  "reach_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
