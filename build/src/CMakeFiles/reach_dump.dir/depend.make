# Empty dependencies file for reach_dump.
# This may be replaced when dependencies are built.
