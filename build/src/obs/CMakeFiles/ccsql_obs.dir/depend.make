# Empty dependencies file for ccsql_obs.
# This may be replaced when dependencies are built.
