file(REMOVE_RECURSE
  "CMakeFiles/ccsql_obs.dir/obs.cpp.o"
  "CMakeFiles/ccsql_obs.dir/obs.cpp.o.d"
  "CMakeFiles/ccsql_obs.dir/sinks.cpp.o"
  "CMakeFiles/ccsql_obs.dir/sinks.cpp.o.d"
  "libccsql_obs.a"
  "libccsql_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
