file(REMOVE_RECURSE
  "libccsql_obs.a"
)
