file(REMOVE_RECURSE
  "CMakeFiles/bench_reach.dir/bench_reach.cpp.o"
  "CMakeFiles/bench_reach.dir/bench_reach.cpp.o.d"
  "bench_reach"
  "bench_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
