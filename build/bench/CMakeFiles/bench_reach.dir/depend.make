# Empty dependencies file for bench_reach.
# This may be replaced when dependencies are built.
