# Empty dependencies file for bench_invariants.
# This may be replaced when dependencies are built.
