file(REMOVE_RECURSE
  "CMakeFiles/ccsql.dir/ccsql_cli.cpp.o"
  "CMakeFiles/ccsql.dir/ccsql_cli.cpp.o.d"
  "ccsql"
  "ccsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
