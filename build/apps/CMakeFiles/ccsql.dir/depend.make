# Empty dependencies file for ccsql.
# This may be replaced when dependencies are built.
