file(REMOVE_RECURSE
  "CMakeFiles/table_index_test.dir/table_index_test.cpp.o"
  "CMakeFiles/table_index_test.dir/table_index_test.cpp.o.d"
  "table_index_test"
  "table_index_test.pdb"
  "table_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
