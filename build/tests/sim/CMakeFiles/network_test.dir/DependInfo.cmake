
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/network_test.cpp" "tests/sim/CMakeFiles/network_test.dir/network_test.cpp.o" "gcc" "tests/sim/CMakeFiles/network_test.dir/network_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccsql_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/ccsql_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ccsql_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/ccsql_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ccsql_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
