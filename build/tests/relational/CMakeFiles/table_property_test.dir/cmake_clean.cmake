file(REMOVE_RECURSE
  "CMakeFiles/table_property_test.dir/table_property_test.cpp.o"
  "CMakeFiles/table_property_test.dir/table_property_test.cpp.o.d"
  "table_property_test"
  "table_property_test.pdb"
  "table_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
