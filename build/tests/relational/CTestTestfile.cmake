# CMake generated Testfile for 
# Source directory: /root/repo/tests/relational
# Build directory: /root/repo/build/tests/relational
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/relational/symbol_test[1]_include.cmake")
include("/root/repo/build/tests/relational/schema_test[1]_include.cmake")
include("/root/repo/build/tests/relational/domain_test[1]_include.cmake")
include("/root/repo/build/tests/relational/table_test[1]_include.cmake")
include("/root/repo/build/tests/relational/expr_test[1]_include.cmake")
include("/root/repo/build/tests/relational/parser_test[1]_include.cmake")
include("/root/repo/build/tests/relational/query_test[1]_include.cmake")
include("/root/repo/build/tests/relational/format_test[1]_include.cmake")
include("/root/repo/build/tests/relational/table_property_test[1]_include.cmake")
include("/root/repo/build/tests/relational/statement_test[1]_include.cmake")
include("/root/repo/build/tests/relational/parser_fuzz_test[1]_include.cmake")
