# CMake generated Testfile for 
# Source directory: /root/repo/tests/protocol
# Build directory: /root/repo/build/tests/protocol
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/protocol/message_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/roles_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/channel_assignment_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/controller_spec_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/asura_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/snoopbus_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/golden_test[1]_include.cmake")
