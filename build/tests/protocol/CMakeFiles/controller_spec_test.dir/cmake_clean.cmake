file(REMOVE_RECURSE
  "CMakeFiles/controller_spec_test.dir/controller_spec_test.cpp.o"
  "CMakeFiles/controller_spec_test.dir/controller_spec_test.cpp.o.d"
  "controller_spec_test"
  "controller_spec_test.pdb"
  "controller_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
