file(REMOVE_RECURSE
  "CMakeFiles/channel_assignment_test.dir/channel_assignment_test.cpp.o"
  "CMakeFiles/channel_assignment_test.dir/channel_assignment_test.cpp.o.d"
  "channel_assignment_test"
  "channel_assignment_test.pdb"
  "channel_assignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
