# Empty compiler generated dependencies file for channel_assignment_test.
# This may be replaced when dependencies are built.
