file(REMOVE_RECURSE
  "CMakeFiles/snoopbus_test.dir/snoopbus_test.cpp.o"
  "CMakeFiles/snoopbus_test.dir/snoopbus_test.cpp.o.d"
  "snoopbus_test"
  "snoopbus_test.pdb"
  "snoopbus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopbus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
