# Empty compiler generated dependencies file for snoopbus_test.
# This may be replaced when dependencies are built.
