# Empty compiler generated dependencies file for asura_test.
# This may be replaced when dependencies are built.
