file(REMOVE_RECURSE
  "CMakeFiles/asura_test.dir/asura_test.cpp.o"
  "CMakeFiles/asura_test.dir/asura_test.cpp.o.d"
  "asura_test"
  "asura_test.pdb"
  "asura_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asura_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
