file(REMOVE_RECURSE
  "CMakeFiles/trace_summary_test.dir/trace_summary_test.cpp.o"
  "CMakeFiles/trace_summary_test.dir/trace_summary_test.cpp.o.d"
  "trace_summary_test"
  "trace_summary_test.pdb"
  "trace_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
