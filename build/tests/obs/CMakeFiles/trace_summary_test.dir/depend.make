# Empty dependencies file for trace_summary_test.
# This may be replaced when dependencies are built.
