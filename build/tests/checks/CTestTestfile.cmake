# CMake generated Testfile for 
# Source directory: /root/repo/tests/checks
# Build directory: /root/repo/build/tests/checks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/checks/invariant_test[1]_include.cmake")
include("/root/repo/build/tests/checks/vcg_test[1]_include.cmake")
include("/root/repo/build/tests/checks/cycle_property_test[1]_include.cmake")
include("/root/repo/build/tests/checks/reach_test[1]_include.cmake")
include("/root/repo/build/tests/checks/lint_test[1]_include.cmake")
