# Empty dependencies file for cycle_property_test.
# This may be replaced when dependencies are built.
