file(REMOVE_RECURSE
  "CMakeFiles/cycle_property_test.dir/cycle_property_test.cpp.o"
  "CMakeFiles/cycle_property_test.dir/cycle_property_test.cpp.o.d"
  "cycle_property_test"
  "cycle_property_test.pdb"
  "cycle_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
