# Empty compiler generated dependencies file for vcg_test.
# This may be replaced when dependencies are built.
