file(REMOVE_RECURSE
  "CMakeFiles/vcg_test.dir/vcg_test.cpp.o"
  "CMakeFiles/vcg_test.dir/vcg_test.cpp.o.d"
  "vcg_test"
  "vcg_test.pdb"
  "vcg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
