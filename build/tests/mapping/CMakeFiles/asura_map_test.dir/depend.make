# Empty dependencies file for asura_map_test.
# This may be replaced when dependencies are built.
