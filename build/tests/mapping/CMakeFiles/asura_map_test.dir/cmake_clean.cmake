file(REMOVE_RECURSE
  "CMakeFiles/asura_map_test.dir/asura_map_test.cpp.o"
  "CMakeFiles/asura_map_test.dir/asura_map_test.cpp.o.d"
  "asura_map_test"
  "asura_map_test.pdb"
  "asura_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asura_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
