# Empty dependencies file for extend_test.
# This may be replaced when dependencies are built.
