// Self-checking unit generated from Response_locmsg.  Exit 0 iff the generated logic reproduces every table row.
#include <cstdio>

// Value symbols referenced by Response_locmsg.
enum Response_locmsg_values {
  kBusyAtM,
  kBusyAtS,
  kBusyAtSi,
  kBusyFlF,
  kBusyFlM,
  kBusyFlS,
  kBusyIorD,
  kBusyIorE,
  kBusyIorR,
  kBusyIowM,
  kBusyIowS,
  kBusyIowSi,
  kBusyRdD,
  kBusyRdG,
  kBusyRdR,
  kBusyRxD,
  kBusyRxG,
  kBusyRxS,
  kBusyRxSd,
  kBusyRxSi,
  kBusyWbM,
  kCompl,
  kCont,
  kData,
  kDone,
  kFdone,
  kFull,
  kGdone,
  kGone,
  kHit,
  kHome,
  kI,
  kIdone,
  kIocompl,
  kIodata,
  kLocal,
  kMdone,
  kMiss,
  kNotFull,
  kOne,
  kRdata,
  kRemote,
  kRespq,
  kZero,
};

constexpr int kNull = -1;
constexpr int kUnset = -2;

struct Inputs {
  int inmsg = kNull;
  int inmsgsrc = kNull;
  int inmsgdest = kNull;
  int inmsgres = kNull;
  int dirlookup = kNull;
  int dirst = kNull;
  int dirpv = kNull;
  int bdirlookup = kNull;
  int bdirst = kNull;
  int bdirpv = kNull;
  int Qstatus = kNull;
  int Dqstatus = kNull;
};
struct Outputs {
  int locmsg = kUnset;
  int locmsgsrc = kUnset;
  int locmsgdest = kUnset;
  int locmsgres = kUnset;
  int cmpl = kUnset;
  bool error = false;
};

// Generated from implementation table Response_locmsg (56 rows). Do not edit.
void Response_locmsg_step(const Inputs& in, Outputs& out) {
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kIodata;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kIodata;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kFdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlF && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kFdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlF && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kCont;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kIodata;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kIodata;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorE && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kIodata;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorE && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kIodata;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kIocompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kIocompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kCompl && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyWbM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kCompl && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyWbM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.locmsg = kCompl;
    out.locmsgsrc = kHome;
    out.locmsgdest = kLocal;
    out.locmsgres = kRespq;
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.cmpl = kDone;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.cmpl = kDone;
    return;
  }
  out.error = true;  // illegal input combination
}

int main() {
  int failures = 0;
  struct Vector { Inputs in; Outputs want; };
  const Vector vectors[] = {
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kOne, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kOne, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kGone, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kGone, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSi, kOne, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSi, kOne, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kOne, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kOne, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kGone, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kGone, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kOne, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kOne, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kGone, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kGone, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowSi, kOne, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowSi, kOne, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kOne, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kOne, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kGone, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kGone, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtSi, kOne, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtSi, kOne, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdR, kZero, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdR, kZero, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorR, kZero, kNotFull, kFull}, {kIodata, kHome, kLocal, kRespq, kDone, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorR, kZero, kNotFull, kNotFull}, {kIodata, kHome, kLocal, kRespq, kDone, false}},
    {{kFdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlF, kZero, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kFdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlF, kZero, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdD, kZero, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdD, kZero, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxD, kZero, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxD, kZero, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kCont, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorD, kZero, kNotFull, kFull}, {kIodata, kHome, kLocal, kRespq, kDone, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorD, kZero, kNotFull, kNotFull}, {kIodata, kHome, kLocal, kRespq, kDone, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorE, kZero, kNotFull, kFull}, {kIodata, kHome, kLocal, kRespq, kDone, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorE, kZero, kNotFull, kNotFull}, {kIodata, kHome, kLocal, kRespq, kDone, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlM, kZero, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlM, kZero, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowM, kZero, kNotFull, kFull}, {kIocompl, kHome, kLocal, kRespq, kDone, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowM, kZero, kNotFull, kNotFull}, {kIocompl, kHome, kLocal, kRespq, kDone, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtM, kZero, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtM, kZero, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kCompl, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyWbM, kZero, kNotFull, kFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kCompl, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyWbM, kZero, kNotFull, kNotFull}, {kCompl, kHome, kLocal, kRespq, kDone, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdG, kZero, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kDone, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdG, kZero, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kDone, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxG, kZero, kNotFull, kFull}, {kNull, kNull, kNull, kNull, kDone, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxG, kZero, kNotFull, kNotFull}, {kNull, kNull, kNull, kNull, kDone, false}},
  };
  for (const Vector& v : vectors) {
    Outputs got;
    Response_locmsg_step(v.in, got);
    bool ok = !got.error;
    ok = ok && (v.want.locmsg == kNull ? got.locmsg == kUnset : got.locmsg == v.want.locmsg);
    ok = ok && (v.want.locmsgsrc == kNull ? got.locmsgsrc == kUnset : got.locmsgsrc == v.want.locmsgsrc);
    ok = ok && (v.want.locmsgdest == kNull ? got.locmsgdest == kUnset : got.locmsgdest == v.want.locmsgdest);
    ok = ok && (v.want.locmsgres == kNull ? got.locmsgres == kUnset : got.locmsgres == v.want.locmsgres);
    ok = ok && (v.want.cmpl == kNull ? got.cmpl == kUnset : got.cmpl == v.want.cmpl);
    if (!ok) { ++failures; }
  }
  std::printf("Response_locmsg: %d failures over 56 vectors\n", failures);
  return failures == 0 ? 0 : 1;
}
