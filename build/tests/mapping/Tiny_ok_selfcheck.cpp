// Self-checking unit generated from Tiny.  Exit 0 iff the generated logic reproduces every table row.
#include <cstdio>

// Value symbols referenced by Tiny.
enum Tiny_values {
  kP,
  kQ,
  kR1,
  kR2,
};

constexpr int kNull = -1;
constexpr int kUnset = -2;

struct Inputs {
  int a = kNull;
};
struct Outputs {
  int x = kUnset;
  bool error = false;
};

// Generated from implementation table Tiny (2 rows). Do not edit.
void Tiny_step(const Inputs& in, Outputs& out) {
  if (in.a == kP) {
    out.x = kR1;
    return;
  }
  if (in.a == kQ) {
    out.x = kR2;
    return;
  }
  out.error = true;  // illegal input combination
}

int main() {
  int failures = 0;
  struct Vector { Inputs in; Outputs want; };
  const Vector vectors[] = {
    {{kP}, {kR1, false}},
    {{kQ}, {kR2, false}},
  };
  for (const Vector& v : vectors) {
    Outputs got;
    Tiny_step(v.in, got);
    bool ok = !got.error;
    ok = ok && (v.want.x == kNull ? got.x == kUnset : got.x == v.want.x);
    if (!ok) { ++failures; }
  }
  std::printf("Tiny: %d failures over 2 vectors\n", failures);
  return failures == 0 ? 0 : 1;
}
