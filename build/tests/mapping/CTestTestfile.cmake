# CMake generated Testfile for 
# Source directory: /root/repo/tests/mapping
# Build directory: /root/repo/build/tests/mapping
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mapping/extend_test[1]_include.cmake")
include("/root/repo/build/tests/mapping/asura_map_test[1]_include.cmake")
include("/root/repo/build/tests/mapping/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/mapping/codegen_exec_test[1]_include.cmake")
