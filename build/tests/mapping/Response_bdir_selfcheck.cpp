// Self-checking unit generated from Response_bdir.  Exit 0 iff the generated logic reproduces every table row.
#include <cstdio>

// Value symbols referenced by Response_bdir.
enum Response_bdir_values {
  kBusyAtM,
  kBusyAtS,
  kBusyAtSi,
  kBusyFlF,
  kBusyFlM,
  kBusyFlS,
  kBusyIorD,
  kBusyIorE,
  kBusyIorR,
  kBusyIowM,
  kBusyIowS,
  kBusyIowSi,
  kBusyRdD,
  kBusyRdG,
  kBusyRdR,
  kBusyRxD,
  kBusyRxG,
  kBusyRxS,
  kBusyRxSd,
  kBusyRxSi,
  kBusyWbM,
  kCompl,
  kData,
  kDec,
  kFdone,
  kFree,
  kFull,
  kGdone,
  kGone,
  kHit,
  kHome,
  kI,
  kIdone,
  kLocal,
  kMdone,
  kMiss,
  kNotFull,
  kOne,
  kRdata,
  kRemote,
  kRespq,
  kZero,
};

constexpr int kNull = -1;
constexpr int kUnset = -2;

struct Inputs {
  int inmsg = kNull;
  int inmsgsrc = kNull;
  int inmsgdest = kNull;
  int inmsgres = kNull;
  int dirlookup = kNull;
  int dirst = kNull;
  int dirpv = kNull;
  int bdirlookup = kNull;
  int bdirst = kNull;
  int bdirpv = kNull;
  int Qstatus = kNull;
  int Dqstatus = kNull;
};
struct Outputs {
  int nxtbdirst = kUnset;
  int nxtbdirpv = kUnset;
  int bdirop = kUnset;
  bool error = false;
};

// Generated from implementation table Response_bdir (56 rows). Do not edit.
void Response_bdir_step(const Inputs& in, Outputs& out) {
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRxD;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRxD;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRxG;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRxG;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRxD;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRxD;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.nxtbdirpv = kDec;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.nxtbdirpv = kDec;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyIowM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyIowM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyIowM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyIowM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyAtM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyAtM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtS && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyAtM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kIdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtSi && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyAtM;
    out.nxtbdirpv = kDec;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRdG;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRdG;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kRdata && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorR && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kFdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlF && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyFlM;
    return;
  }
  if (in.inmsg == kFdone && in.inmsgsrc == kRemote && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlF && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyFlM;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRdG;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRdG;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRxG;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRxG;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRxS;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kOne && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRxS;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kBusyRxS;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxSd && in.bdirpv == kGone && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kBusyRxS;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorD && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorE && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kData && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIorE && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyFlM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyIowM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kMdone && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyAtM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kCompl && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyWbM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kCompl && in.inmsgsrc == kHome && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyWbM && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRdG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  if (in.inmsg == kGdone && in.inmsgsrc == kLocal && in.inmsgdest == kHome && in.inmsgres == kRespq && in.dirlookup == kMiss && in.dirst == kI && in.dirpv == kZero && in.bdirlookup == kHit && in.bdirst == kBusyRxG && in.bdirpv == kZero && in.Qstatus == kNotFull && in.Dqstatus == kNotFull) {
    out.nxtbdirst = kI;
    out.bdirop = kFree;
    return;
  }
  out.error = true;  // illegal input combination
}

int main() {
  int failures = 0;
  struct Vector { Inputs in; Outputs want; };
  const Vector vectors[] = {
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kFull}, {kBusyRxD, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kNotFull}, {kBusyRxD, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kNotFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kOne, kNotFull, kFull}, {kBusyRxG, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kOne, kNotFull, kNotFull}, {kBusyRxG, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kGone, kNotFull, kFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxS, kGone, kNotFull, kNotFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSi, kOne, kNotFull, kFull}, {kBusyRxD, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSi, kOne, kNotFull, kNotFull}, {kBusyRxD, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kOne, kNotFull, kFull}, {kI, kDec, kFree, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kOne, kNotFull, kNotFull}, {kI, kDec, kFree, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kGone, kNotFull, kFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlS, kGone, kNotFull, kNotFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kOne, kNotFull, kFull}, {kBusyIowM, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kOne, kNotFull, kNotFull}, {kBusyIowM, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kGone, kNotFull, kFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowS, kGone, kNotFull, kNotFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowSi, kOne, kNotFull, kFull}, {kBusyIowM, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowSi, kOne, kNotFull, kNotFull}, {kBusyIowM, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kOne, kNotFull, kFull}, {kBusyAtM, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kOne, kNotFull, kNotFull}, {kBusyAtM, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kGone, kNotFull, kFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtS, kGone, kNotFull, kNotFull}, {kNull, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtSi, kOne, kNotFull, kFull}, {kBusyAtM, kDec, kNull, false}},
    {{kIdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtSi, kOne, kNotFull, kNotFull}, {kBusyAtM, kDec, kNull, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdR, kZero, kNotFull, kFull}, {kBusyRdG, kNull, kNull, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdR, kZero, kNotFull, kNotFull}, {kBusyRdG, kNull, kNull, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorR, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kRdata, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorR, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kFdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlF, kZero, kNotFull, kFull}, {kBusyFlM, kNull, kNull, false}},
    {{kFdone, kRemote, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlF, kZero, kNotFull, kNotFull}, {kBusyFlM, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdD, kZero, kNotFull, kFull}, {kBusyRdG, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdD, kZero, kNotFull, kNotFull}, {kBusyRdG, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxD, kZero, kNotFull, kFull}, {kBusyRxG, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxD, kZero, kNotFull, kNotFull}, {kBusyRxG, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kFull}, {kBusyRxS, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kOne, kNotFull, kNotFull}, {kBusyRxS, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kFull}, {kBusyRxS, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxSd, kGone, kNotFull, kNotFull}, {kBusyRxS, kNull, kNull, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorD, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorD, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorE, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kData, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIorE, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlM, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyFlM, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowM, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyIowM, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtM, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kMdone, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyAtM, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kCompl, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyWbM, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kCompl, kHome, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyWbM, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdG, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRdG, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxG, kZero, kNotFull, kFull}, {kI, kNull, kFree, false}},
    {{kGdone, kLocal, kHome, kRespq, kMiss, kI, kZero, kHit, kBusyRxG, kZero, kNotFull, kNotFull}, {kI, kNull, kFree, false}},
  };
  for (const Vector& v : vectors) {
    Outputs got;
    Response_bdir_step(v.in, got);
    bool ok = !got.error;
    ok = ok && (v.want.nxtbdirst == kNull ? got.nxtbdirst == kUnset : got.nxtbdirst == v.want.nxtbdirst);
    ok = ok && (v.want.nxtbdirpv == kNull ? got.nxtbdirpv == kUnset : got.nxtbdirpv == v.want.nxtbdirpv);
    ok = ok && (v.want.bdirop == kNull ? got.bdirop == kUnset : got.bdirop == v.want.bdirop);
    if (!ok) { ++failures; }
  }
  std::printf("Response_bdir: %d failures over 56 vectors\n", failures);
  return failures == 0 ? 0 : 1;
}
