# Empty compiler generated dependencies file for hardware_mapping.
# This may be replaced when dependencies are built.
