file(REMOVE_RECURSE
  "CMakeFiles/hardware_mapping.dir/hardware_mapping.cpp.o"
  "CMakeFiles/hardware_mapping.dir/hardware_mapping.cpp.o.d"
  "hardware_mapping"
  "hardware_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
