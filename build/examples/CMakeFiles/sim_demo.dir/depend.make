# Empty dependencies file for sim_demo.
# This may be replaced when dependencies are built.
