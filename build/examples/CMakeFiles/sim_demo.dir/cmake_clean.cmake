file(REMOVE_RECURSE
  "CMakeFiles/sim_demo.dir/sim_demo.cpp.o"
  "CMakeFiles/sim_demo.dir/sim_demo.cpp.o.d"
  "sim_demo"
  "sim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
