# Empty dependencies file for asura_readex.
# This may be replaced when dependencies are built.
