file(REMOVE_RECURSE
  "CMakeFiles/asura_readex.dir/asura_readex.cpp.o"
  "CMakeFiles/asura_readex.dir/asura_readex.cpp.o.d"
  "asura_readex"
  "asura_readex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asura_readex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
