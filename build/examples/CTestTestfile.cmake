# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_asura_readex "/root/repo/build/examples/asura_readex")
set_tests_properties(example_asura_readex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deadlock_hunt "/root/repo/build/examples/deadlock_hunt")
set_tests_properties(example_deadlock_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hardware_mapping "/root/repo/build/examples/hardware_mapping")
set_tests_properties(example_hardware_mapping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sim_demo "/root/repo/build/examples/sim_demo")
set_tests_properties(example_sim_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
