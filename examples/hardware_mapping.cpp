// The section 5 hardware-mapping flow for the directory controller:
//   1. Extend D with implementation detail (Qstatus, Dqstatus, Fdback and
//      the implementation-defined Dfdback request) to produce ED.
//   2. Partition ED into the nine implementation tables by SQL.
//   3. Verify the mapping: rebuild ED from the parts and recover D.
//   4. Emit controller code from an implementation table ("SQL report
//      generation").
//
// Build & run:  ./build/examples/hardware_mapping
#include <iostream>

#include "mapping/asura_map.hpp"
#include "mapping/codegen.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/database.hpp"
#include "relational/format.hpp"

using namespace ccsql;

int main() {
  auto spec = asura::make_asura();
  const Table& d = spec->database().get(asura::kDirectory);

  ControllerSpec ed_spec = mapping::make_extended_directory(*spec);
  const Table& ed = ed_spec.generate(&spec->database().functions());
  std::cout << "D:  " << d.row_count() << " rows x " << d.column_count()
            << " cols\n";
  std::cout << "ED: " << ed.row_count() << " rows x " << ed.column_count()
            << " cols (adds Qstatus, Dqstatus, Fdback, Dfdback)\n\n";

  Database cat;
  cat.put("ED", ed);
  cat.functions() = spec->database().functions();
  std::cout << "Sample of the implementation behaviour (full output queues "
               "retry a request):\n"
            << to_ascii(cat.query("select inmsg, dirst, Qstatus, locmsg, "
                                  "memmsg, cmpl from ED where inmsg = readex "
                                  "and Qstatus = Full")
                            .rows,
                        6)
            << "\n";
  std::cout << "Deferred directory updates ship as Dfdback:\n"
            << to_ascii(cat.query("select inmsg, bdirst, Dqstatus, dirupd, "
                                  "Fdback from ED where Fdback = Dfdback")
                            .rows,
                        6)
            << "\n";

  auto parts = mapping::partition_directory(ed, spec->database().functions());
  std::cout << "Nine implementation tables (one per output of the request "
               "and response controllers):\n";
  for (const auto& p : parts) {
    std::cout << "  " << p.name << ": " << p.table.row_count() << " rows x "
              << p.table.column_count() << " cols\n";
  }

  auto report = mapping::verify_directory_mapping(*spec);
  std::cout << "\nmapping verification: ED reconstructed="
            << report.ed_reconstructed
            << " base recovered=" << report.base_recovered
            << " contains debugged table=" << report.contains_debugged
            << "\n\n";

  // Code generation from the smallest implementation table.
  for (const auto& p : parts) {
    if (p.name != "Response_bdir") continue;
    std::cout << "=== generated code for " << p.name << " (first lines) ===\n";
    std::string code = mapping::generate_code(p.table, p.name);
    std::cout << code.substr(0, 1200) << "...\n";
  }
  return 0;
}
