// Quickstart: the whole methodology on a deliberately tiny protocol.
//
// A single "lock controller" grants/queues lock requests.  We define its
// columns and domains, attach the paper-style column constraints, let the
// solver generate the controller table, query it with SQL, check an
// invariant, and run the deadlock analysis for two channel assignments.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "ccsql.hpp"

using namespace ccsql;

int main() {
  ProtocolSpec p("quickstart");

  // 1. The message vocabulary.
  p.messages().add("acquire", MessageClass::kRequest, "take the lock");
  p.messages().add("release", MessageClass::kRequest, "drop the lock");
  p.messages().add("grant", MessageClass::kResponse, "lock granted");
  p.messages().add("queued", MessageClass::kResponse, "wait for the lock");
  p.install_functions();

  // 2. The controller: columns, domains (column tables), constraints.
  ControllerSpec& c = p.add_controller("LOCK");
  c.add_input("inmsg", {"acquire", "release"});
  c.add_input("inmsgsrc", {"local"});
  c.add_input("inmsgdest", {"home"});
  c.add_input("lockst", {"free", "held"});
  c.add_output("outmsg", {"NULL", "grant", "queued"});
  c.add_output("outmsgsrc", {"NULL", "home"});
  c.add_output("outmsgdest", {"NULL", "local"});
  c.add_output("nxtlockst", {"NULL", "free", "held"});

  c.constrain("inmsgsrc", "inmsgsrc = local");
  c.constrain("inmsgdest", "inmsgdest = home");
  // A release is only legal while the lock is held.
  c.constrain("lockst", "inmsg = release ? lockst = held : true");
  // The paper-style ternary column constraint.
  c.constrain("outmsg",
              "inmsg = acquire ? "
              "(lockst = free ? outmsg = grant : outmsg = queued) : "
              "outmsg = NULL");
  c.constrain("outmsgsrc", "outmsg = NULL ? outmsgsrc = NULL : outmsgsrc = home");
  c.constrain("outmsgdest",
              "outmsg = NULL ? outmsgdest = NULL : outmsgdest = local");
  c.constrain("nxtlockst",
              "inmsg = acquire and lockst = free ? nxtlockst = held : "
              "(inmsg = release ? nxtlockst = free : nxtlockst = NULL)");
  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"outmsg", "outmsgsrc", "outmsgdest", false});

  // 3. Static checks as SQL.
  p.add_invariant(
      {"grant-only-when-free", "a grant is only issued for a free lock",
       "[select inmsg, lockst from LOCK where outmsg = grant and "
       "not lockst = free] = empty"});
  p.add_invariant(
      {"every-acquire-answered", "acquire always gets a response",
       "[select inmsg, outmsg from LOCK where inmsg = acquire and "
       "outmsg = NULL] = empty"});

  // 4. Generate and inspect through the session facade.
  const Database& db = p.database();
  std::cout << "Generated LOCK controller table:\n"
            << to_ascii(db.get("LOCK")) << "\n";

  std::cout << "SQL: select * from LOCK where outmsg = queued\n"
            << to_ascii(
                   db.query("select * from LOCK where outmsg = queued").rows)
            << "\n";

  // Results are columnar: column() hands out a contiguous span, no copies.
  QueryResult next = db.query("select nxtlockst from LOCK where inmsg = acquire");
  std::cout << "next lock states after an acquire:";
  for (const Value v : next.column("nxtlockst")) {
    std::cout << ' ' << (v.is_null() ? "-" : v.str());
  }
  std::cout << "\n\n";

  InvariantChecker checker(db);
  auto results = checker.check_all(p.invariants());
  std::cout << InvariantChecker::report(results, /*verbose=*/true) << "\n";

  // 5. Deadlock analysis under two assignments: responses sharing the
  // request channel create a cycle; a separate response channel is clean.
  ControllerTableRef ref =
      ControllerTableRef::from_spec(c, db.get("LOCK"));
  ChannelAssignment shared("shared");
  shared.assign("acquire", "local", "home", "VC0");
  shared.assign("release", "local", "home", "VC0");
  shared.assign("grant", "home", "local", "VC0");
  shared.assign("queued", "home", "local", "VC0");
  ChannelAssignment split("split");
  split.assign("acquire", "local", "home", "VC0");
  split.assign("release", "local", "home", "VC0");
  split.assign("grant", "home", "local", "VC1");
  split.assign("queued", "home", "local", "VC1");

  for (const ChannelAssignment* v : {&shared, &split}) {
    DeadlockAnalysis analysis({ref}, *v);
    std::cout << "assignment '" << v->name() << "':\n"
              << analysis.report() << "\n";
  }
  return 0;
}
