// The section 4.1 / 4.2 deadlock-detection story, end to end:
//   1. V4 (four channels): several cycles, mostly involving the directory
//      and memory controllers at home.
//   2. V5 (VC4 added for directory->memory requests): the Figure 4
//      deadlock — a cycle between VC2 and VC4 — including the paper's
//      composed witness row R3 = (wb,home,home,VC4, mread,home,home,VC4).
//   3. V5fix (dedicated directory->memory path): no cycles.
//
// Build & run:  ./build/examples/deadlock_hunt
#include <iostream>

#include "checks/vcg.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/database.hpp"
#include "relational/format.hpp"

using namespace ccsql;

int main() {
  auto spec = asura::make_asura();
  const Catalog& db = spec->database().catalog();

  std::vector<ControllerTableRef> tables;
  for (const auto& c : spec->controllers()) {
    tables.push_back(ControllerTableRef::from_spec(*c, db.get(c->name())));
  }

  for (const char* name :
       {asura::kAssignV4, asura::kAssignV5, asura::kAssignV5Fix}) {
    const ChannelAssignment& v = spec->assignment(name);
    std::cout << "=== assignment " << name << " ===\n";
    std::cout << "V table (" << v.size() << " entries):\n"
              << to_ascii(v.to_table(), 12) << "\n";
    DeadlockAnalysis analysis(tables, v);
    std::cout << analysis.report() << "\n";
  }

  // The paper's R3 row, recovered by SQL over the protocol dependency
  // table of V5.
  DeadlockAnalysis v5(tables, spec->assignment(asura::kAssignV5));
  Database cat;
  cat.put("PDT", v5.protocol_dependency_table());
  std::cout << "=== the Figure 4 composed dependency (paper's row R3) ===\n"
            << "SQL: select * from PDT where m1 = wb and v1 = VC4 and "
               "m2 = mread and v2 = VC4\n"
            << to_ascii(cat.query(
                             "select * from PDT where m1 = wb and v1 = "
                             "\"VC4\" and m2 = mread and v2 = \"VC4\"")
                            .rows)
            << "\n";
  return 0;
}
