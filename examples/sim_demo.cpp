// Runs the ASURA protocol dynamically, driven by the generated controller
// tables, and shows the Figure 4 deadlock happening live:
//   * under V5 the scripted wb(B) / readex(A) interleaving wedges with the
//     idone occupying VC2 and the forwarded wb occupying VC4;
//   * under V5fix the same scenario completes;
//   * a randomized multi-quad workload then validates coherence (single
//     writer, fresh fills, directory/cache agreement at quiescence).
//
// Build & run:  ./build/examples/sim_demo
#include <iostream>
#include <memory>

#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "sim/machine.hpp"

using namespace ccsql;
using namespace ccsql::sim;

SimResult fig4(const ProtocolSpec& spec, const char* assignment,
               bool trace) {
  if (trace) {
    // Per-event instants stream to stdout through the obs layer.
    obs::Tracer::global().set_sink(std::make_unique<obs::TextSink>(std::cout));
  }
  SimConfig cfg;
  cfg.n_quads = 3;   // quad 2 is home for lines A and B (L != H = R for A)
  cfg.n_addrs = 6;
  cfg.channel_capacity = 1;
  Machine m(spec, spec.assignment(assignment), cfg);
  m.set_memory_latency(16);  // a slow memory exposes the interleaving
  m.set_line(2, "MESI", {2});  // A: modified at the node co-located with home
  m.set_line(5, "MESI", {0});  // B: modified at node 0
  m.script(0, "pwb", 5);       // wb(B)
  m.script(1, "pwr", 2);       // readex(A)
  return m.run();
}

int main() {
  auto spec = asura::make_asura();

  std::cout << "=== Figure 4 scenario under V5 (traced) ===\n";
  SimResult r = fig4(*spec, asura::kAssignV5, /*trace=*/true);
  obs::Tracer::global().set_sink(nullptr);  // untraced from here on
  std::cout << (r.deadlocked ? "DEADLOCK detected; blocked channels:\n"
                             : "unexpectedly completed\n")
            << r.deadlock_report << "\n";

  std::cout << "=== same scenario under V5fix ===\n";
  r = fig4(*spec, asura::kAssignV5Fix, /*trace=*/false);
  std::cout << (r.completed ? "completed" : "FAILED") << " in " << r.steps
            << " steps, " << r.transactions_done << " transactions\n\n";

  std::cout << "=== randomized workload, 4 quads x 150 transactions ===\n";
  SimConfig cfg;
  cfg.n_quads = 4;
  cfg.n_addrs = 8;
  cfg.channel_capacity = 2;
  cfg.transactions_per_node = 150;
  cfg.seed = 2026;
  Machine m(*spec, spec->assignment(asura::kAssignV5Fix), cfg);
  m.set_memory_latency(2);
  m.enable_random_workload();
  r = m.run();
  std::cout << "completed=" << r.completed << " steps=" << r.steps
            << " transactions=" << r.transactions_done
            << " coherence violations=" << r.errors.size() << "\n";
  for (const auto& e : r.errors) std::cout << "  " << e << "\n";
  return r.errors.empty() && r.completed ? 0 : 1;
}
