// Regenerates the paper's Figures 1-3 from the ASURA reconstruction:
//   Figure 1 - the protocol message vocabulary
//   Figure 2 - the read-exclusive transaction at the directory controller
//   Figure 3 - the directory-controller rows for that transaction
//
// Build & run:  ./build/examples/asura_readex
#include <iostream>

#include "protocol/asura/asura.hpp"
#include "relational/database.hpp"
#include "relational/format.hpp"

using namespace ccsql;

int main() {
  auto spec = asura::make_asura();
  const Catalog& db = spec->database().catalog();

  std::cout << "=== Figure 1: protocol messages (" << spec->messages().size()
            << " types) ===\n"
            << to_ascii(db.get("Messages")) << "\n";

  std::cout << "=== Figure 2: read exclusive at D, line SI at a remote "
               "node ===\n"
               "local --readex--> D(home): directory lookup finds SI\n"
               "  D --sinv--> remote (invalidate the shared copies)\n"
               "  D --mread--> memory (fetch the data)        [simultaneous]\n"
               "  D enters Busy-rx-sd (snoop + data responses pending)\n"
               "remote --idone--> D, memory --data--> D (either order)\n"
               "  D --compl,data--> local; ownership transfers (MESI)\n\n";

  Database cat;
  cat.put("D", db.get(asura::kDirectory));
  cat.functions() = db.functions();

  std::cout << "=== Figure 3: D's rows for the readex transaction ===\n";
  const char* queries[] = {
      // The accepting row (Figure 2's fork) and the busy-state progression
      // of Figure 3: Busy-sd -data-> Busy-s, Busy-sd -idone-> Busy-d, and
      // the completing rows.
      "select inmsg, dirst, dirpv, bdirst, bdirpv, locmsg, remmsg, memmsg, "
      "nxtdirst, nxtdirpv, nxtbdirst, nxtbdirpv from D where "
      "inmsg = readex and bdirst = \"I\"",
      "select inmsg, bdirst, bdirpv, locmsg, memmsg, nxtbdirst, nxtbdirpv, "
      "datapath, cmpl from D where isresponse(inmsg) and "
      "bdirst in (\"Busy-rx-sd\", \"Busy-rx-s\", \"Busy-rx-si\", "
      "\"Busy-rx-d\", \"Busy-rx-g\")",
  };
  for (const char* q : queries) {
    std::cout << "SQL: " << q << "\n"
              << to_ascii(cat.query(q).rows) << "\n";
  }

  const Table& d = db.get(asura::kDirectory);
  std::cout << "Directory controller table D: " << d.row_count()
            << " rows x " << d.column_count() << " columns, "
            << asura::busy_states().size() << " busy states\n";
  return 0;
}
