// Experiment INV (DESIGN.md): the section 4.3 invariant suite.
//
// The paper: "All of the protocol invariants (around 50) are checked on a
// SUN Sparc 10 within 5 minutes."  We time the full suite, a single
// invariant, and raw SQL query throughput over the directory table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "checks/invariant.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

void BM_FullInvariantSuite(benchmark::State& state) {
  const ProtocolSpec& spec = asura_spec();
  InvariantChecker checker(spec.database());
  std::size_t checked = 0;
  for (auto _ : state) {
    auto results = checker.check_all(spec.invariants());
    checked = results.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["invariants"] = static_cast<double>(checked);
}
BENCHMARK(BM_FullInvariantSuite)->Unit(benchmark::kMillisecond);

void BM_SingleInvariant(benchmark::State& state) {
  const ProtocolSpec& spec = asura_spec();
  InvariantChecker checker(spec.database());
  const NamedInvariant& inv = spec.invariants().front();
  for (auto _ : state) {
    auto r = checker.check(inv);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SingleInvariant)->Unit(benchmark::kMicrosecond);

void BM_SqlSelectOverD(benchmark::State& state) {
  const Catalog& db = asura_spec().database().catalog();
  for (auto _ : state) {
    Table t = db.query(
        "select inmsg, bdirst, locmsg from D where isrequest(inmsg) and "
        "not bdirst = \"I\" and not locmsg = \"retry\"");
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_SqlSelectOverD)->Unit(benchmark::kMicrosecond);

void BM_SqlParseInvariant(benchmark::State& state) {
  const NamedInvariant& inv = asura_spec().invariants().front();
  for (auto _ : state) {
    auto stmts = parse_invariant(inv.sql);
    benchmark::DoNotOptimize(stmts);
  }
}
BENCHMARK(BM_SqlParseInvariant)->Unit(benchmark::kMicrosecond);

/// Violation detection cost: suite run against a corrupted table (the
/// failing path materialises violating rows).
void BM_SuiteWithInjectedViolation(benchmark::State& state) {
  const ProtocolSpec& spec = asura_spec();
  Database db = spec.database();
  Table d = db.get("D");
  std::vector<Value> row(d.row(0).begin(), d.row(0).end());
  row[d.schema().index_of("dirst")] = V("MESI");
  row[d.schema().index_of("dirpv")] = V("zero");
  d.append(RowView(row));
  db.put("D", std::move(d));
  InvariantChecker checker(db);
  std::size_t violated = 0;
  for (auto _ : state) {
    auto results = checker.check_all(spec.invariants());
    violated = 0;
    for (const auto& r : results) {
      if (!r.holds) ++violated;
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["violated"] = static_cast<double>(violated);
}
BENCHMARK(BM_SuiteWithInjectedViolation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  std::printf("# Experiment INV: %zu invariants over %zu controller tables "
              "(paper: ~50 invariants, < 5 minutes on a Sparc 10)\n",
              asura_spec().invariants().size(),
              asura_spec().controllers().size());
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
