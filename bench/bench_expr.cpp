// Experiment EXPR (DESIGN.md section 10): predicate engine comparison.
//
// One ASURA-shaped predicate (the paper's directory column constraint — a
// ternary over conjunctions of equality tests) is evaluated over synthetic
// controller tables three ways:
//
//   interpreted — CompiledExpr::eval, the pointer-chasing AST walk
//   scalar      — bc::Program::eval, the flat bytecode program row at a time
//   vectorized  — bc::Program::eval_batch over 1024-row selection vectors
//
// at 10k / 100k / 1M rows.  A direct best-of-N measurement at the largest
// size is emitted as one machine-readable `# expr_speedup {...}` JSON line
// plus `bench.expr_*_us` metrics, mirroring bench_suite's summary lines.
//
// `--smoke` (stripped before google-benchmark sees argv) shrinks every size
// so CI can run the binary in well under a second.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "relational/bytecode.hpp"
#include "relational/expr.hpp"
#include "relational/parser.hpp"
#include "relational/table.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

bool g_smoke = false;

// The paper's transition-guard shape — a conjunction of equality tests over
// controller columns — which is what every scan/filter, join residual, and
// emptiness probe evaluates per row.
const char* kPredicate =
    "inmsg = \"readex\" and dirst != \"MESI\" and dirpv = \"zero\"";

// The directory column-constraint shape (ternary over conjunctions),
// exercising the selection-split paths.
const char* kTernaryPredicate =
    "inmsg in (\"readex\", \"wb\") and dirst != \"MESI\" "
    "? dirpv = \"zero\" : dirpv = \"one\" or dirst = \"Busy-d\"";

/// Synthetic controller table: the same few-symbol domains as ASURA's
/// directory, cycled so every branch of the predicate stays warm.
const Table& table_of(std::size_t rows) {
  static std::map<std::size_t, Table> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;
  Table t(Schema::of({"inmsg", "dirst", "dirpv"}));
  t.reserve_rows(rows);
  const char* msgs[] = {"readex", "wb", "data", "ack", "inv"};
  const char* states[] = {"I", "SI", "MESI", "Busy-d"};
  const char* pvs[] = {"zero", "one"};
  for (std::size_t i = 0; i < rows; ++i) {
    t.append({V(msgs[i % 5]), V(states[(i / 5) % 4]), V(pvs[(i / 3) % 2])});
  }
  return cache.emplace(rows, std::move(t)).first->second;
}

std::size_t scan_interpreted(const Table& t, const CompiledExpr& e) {
  std::size_t hits = 0;
  const std::size_t n = t.row_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (e.eval(t.row(i))) ++hits;
  }
  return hits;
}

std::size_t scan_scalar(const Table& t, const bc::Program& p) {
  std::size_t hits = 0;
  const std::size_t n = t.row_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (p.eval(t.row(i))) ++hits;
  }
  return hits;
}

std::size_t scan_vectorized(const Table& t, const bc::Program& p,
                            bc::Scratch& scratch) {
  std::size_t hits = 0;
  const std::size_t n = t.row_count();
  const std::vector<const Value*> cols = t.column_ptrs();
  bc::Sel out;
  for (std::size_t b = 0; b < n; b += 1024) {
    const std::size_t be = std::min(n, b + 1024);
    p.eval_range(cols, static_cast<std::uint32_t>(b),
                 static_cast<std::uint32_t>(be), out, scratch);
    hits += out.size();
  }
  return hits;
}

const char* predicate_of(const benchmark::State& state) {
  return state.range(1) == 0 ? kPredicate : kTernaryPredicate;
}

void BM_FilterInterpreted(benchmark::State& state) {
  const Table& t = table_of(static_cast<std::size_t>(state.range(0)));
  const Schema& s = t.schema();
  const CompiledExpr e = compile(parse_expr(predicate_of(state)), s, s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_interpreted(t, e));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.row_count()));
}

void BM_FilterScalarBytecode(benchmark::State& state) {
  const Table& t = table_of(static_cast<std::size_t>(state.range(0)));
  const Schema& s = t.schema();
  const bc::Program p = compile_bytecode(parse_expr(predicate_of(state)), s, s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_scalar(t, p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.row_count()));
}

void BM_FilterVectorized(benchmark::State& state) {
  const Table& t = table_of(static_cast<std::size_t>(state.range(0)));
  const Schema& s = t.schema();
  const bc::Program p = compile_bytecode(parse_expr(predicate_of(state)), s, s);
  bc::Scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_vectorized(t, p, scratch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.row_count()));
}

/// One direct interpreted-vs-vectorized measurement outside the
/// google-benchmark loop, emitted as a scrapeable JSON line (the acceptance
/// gate for this experiment reads `speedup` here).
void report_expr_speedup(std::size_t rows) {
  using clock = std::chrono::steady_clock;
  const Table& t = table_of(rows);
  const Schema& s = t.schema();
  const CompiledExpr interp = compile(parse_expr(kPredicate), s, s);
  const bc::Program prog = compile_bytecode(parse_expr(kPredicate), s, s);
  bc::Scratch scratch;

  auto time_us = [&](auto&& scan) {
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(scan());
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 t0)
        .count();
  };
  auto best_of = [&](auto&& scan) {
    auto best = time_us(scan);
    for (int i = 0; i < 4; ++i) best = std::min(best, time_us(scan));
    return best;
  };
  (void)best_of([&] { return scan_vectorized(t, prog, scratch); });  // warm
  const auto interp_us = best_of([&] { return scan_interpreted(t, interp); });
  const auto scalar_us = best_of([&] { return scan_scalar(t, prog); });
  const auto vector_us = best_of([&] { return scan_vectorized(t, prog, scratch); });

  CCSQL_COUNT("bench.expr_rows", static_cast<std::uint64_t>(rows));
  CCSQL_COUNT("bench.expr_interp_us", static_cast<std::uint64_t>(interp_us));
  CCSQL_COUNT("bench.expr_scalar_us", static_cast<std::uint64_t>(scalar_us));
  CCSQL_COUNT("bench.expr_vector_us", static_cast<std::uint64_t>(vector_us));
  std::printf(
      "# expr_speedup {\"rows\":%zu,\"interp_us\":%lld,\"scalar_us\":%lld,"
      "\"vector_us\":%lld,\"speedup\":%.2f}\n",
      rows, static_cast<long long>(interp_us),
      static_cast<long long>(scalar_us), static_cast<long long>(vector_us),
      vector_us > 0
          ? static_cast<double>(interp_us) / static_cast<double>(vector_us)
          : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark parses argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  const std::vector<std::int64_t> sizes =
      g_smoke ? std::vector<std::int64_t>{1000, 4000}
              : std::vector<std::int64_t>{10'000, 100'000, 1'000'000};
  for (auto* fn : {&BM_FilterInterpreted, &BM_FilterScalarBytecode,
                   &BM_FilterVectorized}) {
    const char* name = fn == &BM_FilterInterpreted ? "BM_FilterInterpreted"
                       : fn == &BM_FilterScalarBytecode
                           ? "BM_FilterScalarBytecode"
                           : "BM_FilterVectorized";
    auto* b = benchmark::RegisterBenchmark(name, fn);
    for (auto n : sizes) {
      b->Args({n, 0});  // guard conjunction
      b->Args({n, 1});  // ternary column constraint
    }
    b->Unit(benchmark::kMicrosecond);
  }

  std::printf("# Experiment EXPR: interpreted vs scalar-bytecode vs "
              "vectorized predicate evaluation%s\n",
              g_smoke ? " (smoke)" : "");
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_expr_speedup(g_smoke ? 4000 : 1'000'000);
  finish_metrics("bench_expr");
  return 0;
}
