// Experiment FIG5 / MAP (DESIGN.md): the section 5 hardware-mapping flow.
//
// Times the three mapping stages (ED generation, partition into the nine
// implementation tables, reconstruction verification) and the code
// generation ("SQL report generation"), and prints the table inventory the
// paper describes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "mapping/asura_map.hpp"
#include "mapping/codegen.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

const Table& ed_table() {
  static const ControllerSpec ed_spec =
      mapping::make_extended_directory(asura_spec());
  return ed_spec.generate(&asura_spec().database().functions());
}

void BM_GenerateEd(benchmark::State& state) {
  std::size_t rows = 0;
  for (auto _ : state) {
    ControllerSpec ed_spec = mapping::make_extended_directory(asura_spec());
    const Table& ed =
        ed_spec.generate(&asura_spec().database().functions());
    rows = ed.row_count();
    benchmark::DoNotOptimize(ed);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_GenerateEd)->Unit(benchmark::kMillisecond);

void BM_PartitionIntoNine(benchmark::State& state) {
  const Table& ed = ed_table();
  std::size_t tables = 0;
  for (auto _ : state) {
    auto parts = mapping::partition_directory(
        ed, asura_spec().database().functions());
    tables = parts.size();
    benchmark::DoNotOptimize(parts);
  }
  state.counters["tables"] = static_cast<double>(tables);
}
BENCHMARK(BM_PartitionIntoNine)->Unit(benchmark::kMillisecond);

void BM_ReconstructAndVerify(benchmark::State& state) {
  const Table& ed = ed_table();
  auto parts =
      mapping::partition_directory(ed, asura_spec().database().functions());
  bool ok = false;
  for (auto _ : state) {
    Table rebuilt = mapping::reconstruct_extended(parts, ed);
    ok = rebuilt.set_equal(ed);
    benchmark::DoNotOptimize(rebuilt);
  }
  state.counters["verified"] = ok ? 1 : 0;
}
BENCHMARK(BM_ReconstructAndVerify)->Unit(benchmark::kMillisecond);

void BM_RecoverDebuggedTable(benchmark::State& state) {
  const Table& ed = ed_table();
  const Table& d = asura_spec().database().get(asura::kDirectory);
  bool ok = false;
  for (auto _ : state) {
    Table base = mapping::reconstruct_base(ed, d);
    ok = base.set_equal(d);
    benchmark::DoNotOptimize(base);
  }
  state.counters["verified"] = ok ? 1 : 0;
}
BENCHMARK(BM_RecoverDebuggedTable)->Unit(benchmark::kMillisecond);

void BM_CodegenAllNineTables(benchmark::State& state) {
  const Table& ed = ed_table();
  auto parts =
      mapping::partition_directory(ed, asura_spec().database().functions());
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (const auto& p : parts) {
      bytes += mapping::generate_code(p.table, p.name).size();
      bytes += mapping::generate_value_declarations(p.table, p.name).size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CodegenAllNineTables)->Unit(benchmark::kMillisecond);

void BM_EndToEndMappingFlow(benchmark::State& state) {
  bool ok = false;
  for (auto _ : state) {
    auto report = mapping::verify_directory_mapping(asura_spec());
    ok = report.ok();
    benchmark::DoNotOptimize(report);
  }
  state.counters["verified"] = ok ? 1 : 0;
}
BENCHMARK(BM_EndToEndMappingFlow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  const Table& d = asura_spec().database().get(asura::kDirectory);
  const Table& ed = ed_table();
  std::printf("# Experiment MAP: D %zux%zu -> ED %zux%zu -> 9 implementation "
              "tables (paper, section 5)\n",
              d.row_count(), d.column_count(), ed.row_count(),
              ed.column_count());
  auto parts =
      mapping::partition_directory(ed, asura_spec().database().functions());
  for (const auto& p : parts) {
    std::printf("#   %-16s %zu rows x %zu cols\n", p.name.c_str(),
                p.table.row_count(), p.table.column_count());
  }
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
