// Experiments FIG4 / VCG (DESIGN.md): the section 4.1 deadlock analysis.
//
// Regenerates the paper's deadlock-detection results as data — cycles per
// assignment (V4: several at home; V5: the Figure 4 VC2/VC4 cycle; V5fix:
// none) — and times the construction of the protocol dependency table under
// ablations: number of controllers, quad placements on/off, message-
// ignoring relaxation on/off, composition rounds.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "checks/vcg.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

std::vector<ControllerTableRef> all_tables() {
  std::vector<ControllerTableRef> refs;
  const ProtocolSpec& spec = asura_spec();
  for (const auto& c : spec.controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, spec.database().get(c->name())));
  }
  return refs;
}

void BM_AnalyseAssignment(benchmark::State& state, const char* assignment) {
  auto refs = all_tables();
  const ChannelAssignment& v = asura_spec().assignment(assignment);
  std::size_t cycles = 0, rows = 0;
  for (auto _ : state) {
    DeadlockAnalysis analysis(refs, v);
    cycles = analysis.cycles().size();
    rows = analysis.protocol_rows().size();
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["dep_rows"] = static_cast<double>(rows);
}
BENCHMARK_CAPTURE(BM_AnalyseAssignment, V4, ccsql::asura::kAssignV4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_AnalyseAssignment, V5, ccsql::asura::kAssignV5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_AnalyseAssignment, V5fix, ccsql::asura::kAssignV5Fix)
    ->Unit(benchmark::kMicrosecond);

/// Cost scaling with the number of controller tables analysed.
void BM_ControllerCountSweep(benchmark::State& state) {
  auto refs = all_tables();
  refs.resize(static_cast<std::size_t>(state.range(0)));
  const ChannelAssignment& v = asura_spec().assignment(asura::kAssignV5);
  for (auto _ : state) {
    DeadlockAnalysis analysis(refs, v);
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(BM_ControllerCountSweep)->DenseRange(1, 8)->Unit(benchmark::kMicrosecond);

/// Ablations of the paper's two relaxations.
void BM_Ablation(benchmark::State& state, bool placements, bool ignore_msgs,
                 int rounds) {
  auto refs = all_tables();
  const ChannelAssignment& v = asura_spec().assignment(asura::kAssignV5);
  DeadlockOptions opts;
  opts.use_placements = placements;
  opts.ignore_messages = ignore_msgs;
  opts.composition_rounds = rounds;
  std::size_t cycles = 0;
  for (auto _ : state) {
    DeadlockAnalysis analysis(refs, v, opts);
    cycles = analysis.cycles().size();
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK_CAPTURE(BM_Ablation, full, true, true, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Ablation, no_placements, false, true, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Ablation, exact_match_only, true, false, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Ablation, no_composition, true, true, 0)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Ablation, fixpoint, true, true, 8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  std::printf(
      "# Experiment FIG4: cycles per assignment (paper: V4 several cycles at "
      "home; V5 the VC2/VC4 cycle of Figure 4; V5fix none)\n");
  auto refs = all_tables();
  for (const char* a :
       {asura::kAssignV4, asura::kAssignV5, asura::kAssignV5Fix}) {
    DeadlockAnalysis analysis(refs, asura_spec().assignment(a));
    std::printf("#   %-6s: %zu dependency rows, %zu edges, %zu cycle(s)",
                a, analysis.protocol_rows().size(), analysis.edges().size(),
                analysis.cycles().size());
    if (!analysis.cycles().empty()) {
      std::printf(" — first: ");
      for (Value c : analysis.cycles().front().channels) {
        std::printf("%s ", std::string(c.str()).c_str());
      }
    }
    std::printf("\n");
  }
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
