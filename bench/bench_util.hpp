#pragma once

// Shared helpers for the benchmark binaries: a process-wide ASURA spec (the
// protocol is immutable; generation is benchmarked separately against fresh
// specs) and a prefix-restricted GenerationInput used by the incremental /
// monolithic sweeps.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "solver/generator.hpp"

namespace ccsql::bench {

/// Turns on the global metric registry for this benchmark process.  Call
/// before the workload; pair with print_metrics_summary() at exit.
inline void enable_metrics() { obs::Tracer::global().enable_metrics(); }

/// Prints everything the workload counted as one machine-readable line
/// (`# metrics {...}`), for harnesses that scrape benchmark stdout.
inline void print_metrics_summary() {
  std::printf("# metrics %s\n",
              obs::Tracer::global().metrics().to_json().c_str());
}

inline const ProtocolSpec& asura_spec() {
  static const std::unique_ptr<ProtocolSpec> spec = asura::make_asura();
  return *spec;
}

/// The generation input of controller `name` restricted to its first
/// `columns` columns, keeping exactly the constraints whose referenced
/// columns all fall in that prefix.  This is how the monolithic-vs-
/// incremental sweep scales the problem (the full 30-column D is far beyond
/// monolithic reach — the paper's "6 hours" grows without bound here).
inline GenerationInput prefix_input(const ProtocolSpec& spec,
                                    const char* name, std::size_t columns) {
  const ControllerSpec& c = spec.controller(name);
  const GenerationInput& full =
      c.generation_input(&spec.database().functions());
  GenerationInput out;
  std::vector<Column> cols;
  for (std::size_t i = 0; i < columns && i < full.schema->size(); ++i) {
    cols.push_back(full.schema->column(i));
    out.domains.push_back(full.domains[i]);
  }
  out.schema = make_schema(std::move(cols));
  for (const auto& constraint : full.constraints) {
    bool applicable = out.schema->has(constraint.column);
    for (const auto& ref :
         constraint.expr.referenced_columns(*full.schema)) {
      if (!out.schema->has(ref)) applicable = false;
    }
    if (applicable) out.constraints.push_back(constraint);
  }
  out.functions = full.functions;
  return out;
}

/// The prefix input with its column order reversed: constraints now bind as
/// late as possible, so incremental generation loses most of its pruning —
/// the ablation behind the paper's "inputs first, then one output column at
/// a time" ordering advice.
inline GenerationInput reversed_prefix_input(const ProtocolSpec& spec,
                                             const char* name,
                                             std::size_t columns) {
  GenerationInput in = prefix_input(spec, name, columns);
  std::vector<Column> cols;
  for (std::size_t i = in.schema->size(); i-- > 0;) {
    cols.push_back(in.schema->column(i));
  }
  std::reverse(in.domains.begin(), in.domains.end());
  in.schema = make_schema(std::move(cols));
  return in;
}

}  // namespace ccsql::bench
