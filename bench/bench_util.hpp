#pragma once

// Shared helpers for the benchmark binaries: a process-wide ASURA spec (the
// protocol is immutable; generation is benchmarked separately against fresh
// specs), a prefix-restricted GenerationInput used by the incremental /
// monolithic sweeps, and the ccsql-bench/1 metrics document scraped by the
// regression harness (tools/bench_diff, the CI perf-smoke job).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pool.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "solver/generator.hpp"

namespace ccsql::bench {

/// Turns on the global metric registry for this benchmark process.  Call
/// before the workload; pair with print_metrics_summary() at exit.
inline void enable_metrics() { obs::Tracer::global().enable_metrics(); }

/// Prints everything the workload counted as one machine-readable line
/// (`# metrics {...}`), for harnesses that scrape benchmark stdout.
inline void print_metrics_summary() {
  std::printf("# metrics %s\n",
              obs::Tracer::global().metrics().to_json().c_str());
}

/// Unit of a metric, inferred from its name suffix — the convention every
/// CCSQL_COUNT site follows (`*_us`, `*_nanos`, `*_bytes`; plain counts
/// otherwise).  bench_diff treats time units as regression-relevant.
inline const char* metric_unit(const std::string& name) {
  auto ends_with = [&name](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  if (ends_with("_us") || ends_with("_micros")) return "us";
  if (ends_with("_ms") || ends_with("_millis")) return "ms";
  if (ends_with("_ns") || ends_with("_nanos")) return "ns";
  if (ends_with("_bytes")) return "bytes";
  if (ends_with("_pct")) return "percent";
  if (ends_with("_qps")) return "qps";
  return "count";
}

/// The ccsql-bench/1 metrics document: schema tag, bench name, git sha
/// (GITHUB_SHA / CCSQL_GIT_SHA, else "unknown"), the jobs default, and every
/// counter as {name, value, unit}.  This is the file format bench_diff
/// compares and bench/baselines/*.json stores.
inline std::string metrics_json_v1(const char* bench_name) {
  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr || *sha == '\0') sha = std::getenv("CCSQL_GIT_SHA");
  if (sha == nullptr || *sha == '\0') sha = "unknown";
  std::ostringstream os;
  os << "{\"schema\":\"ccsql-bench/1\",\"bench\":\""
     << obs::json_escape(bench_name) << "\",\"git_sha\":\""
     << obs::json_escape(sha) << "\",\"jobs\":" << core::Pool::default_jobs()
     << ",\"metrics\":[";
  bool first = true;
  for (const auto& [name, value] :
       obs::Tracer::global().metrics().counters()) {
    os << (first ? "" : ",") << "{\"name\":\"" << obs::json_escape(name)
       << "\",\"value\":" << value << ",\"unit\":\"" << metric_unit(name)
       << "\"}";
    first = false;
  }
  os << "]}";
  return os.str();
}

/// End-of-run reporting for a benchmark binary: folds the pool and memory
/// gauges into the registry, prints the legacy `# metrics` line, the pool
/// utilization line, and the ccsql-bench/1 document (`# bench_metrics`).
/// When CCSQL_BENCH_OUT names a file the document is also written there —
/// that is what the CI perf-smoke job diffs against bench/baselines/.
inline void finish_metrics(const char* bench_name) {
  obs::Metrics& metrics = obs::Tracer::global().metrics();
  core::Pool::global().publish_stats(metrics);
  obs::MemTracker::global().publish(metrics);
  print_metrics_summary();
  std::printf("# %s\n", core::Pool::global().stats().summary().c_str());
  const std::string doc = metrics_json_v1(bench_name);
  std::printf("# bench_metrics %s\n", doc.c_str());
  if (const char* path = std::getenv("CCSQL_BENCH_OUT");
      path != nullptr && *path != '\0') {
    std::ofstream out(path);
    if (out) {
      out << doc << "\n";
    } else {
      std::fprintf(stderr, "bench: cannot write CCSQL_BENCH_OUT=%s\n", path);
    }
  }
}

inline const ProtocolSpec& asura_spec() {
  static const std::unique_ptr<ProtocolSpec> spec = asura::make_asura();
  return *spec;
}

/// The generation input of controller `name` restricted to its first
/// `columns` columns, keeping exactly the constraints whose referenced
/// columns all fall in that prefix.  This is how the monolithic-vs-
/// incremental sweep scales the problem (the full 30-column D is far beyond
/// monolithic reach — the paper's "6 hours" grows without bound here).
inline GenerationInput prefix_input(const ProtocolSpec& spec,
                                    const char* name, std::size_t columns) {
  const ControllerSpec& c = spec.controller(name);
  const GenerationInput& full =
      c.generation_input(&spec.database().functions());
  GenerationInput out;
  std::vector<Column> cols;
  for (std::size_t i = 0; i < columns && i < full.schema->size(); ++i) {
    cols.push_back(full.schema->column(i));
    out.domains.push_back(full.domains[i]);
  }
  out.schema = make_schema(std::move(cols));
  for (const auto& constraint : full.constraints) {
    bool applicable = out.schema->has(constraint.column);
    for (const auto& ref :
         constraint.expr.referenced_columns(*full.schema)) {
      if (!out.schema->has(ref)) applicable = false;
    }
    if (applicable) out.constraints.push_back(constraint);
  }
  out.functions = full.functions;
  return out;
}

/// The prefix input with its column order reversed: constraints now bind as
/// late as possible, so incremental generation loses most of its pruning —
/// the ablation behind the paper's "inputs first, then one output column at
/// a time" ordering advice.
inline GenerationInput reversed_prefix_input(const ProtocolSpec& spec,
                                             const char* name,
                                             std::size_t columns) {
  GenerationInput in = prefix_input(spec, name, columns);
  std::vector<Column> cols;
  for (std::size_t i = in.schema->size(); i-- > 0;) {
    cols.push_back(in.schema->column(i));
  }
  std::reverse(in.domains.begin(), in.domains.end());
  in.schema = make_schema(std::move(cols));
  return in;
}

}  // namespace ccsql::bench
