// Experiment SUITE (DESIGN.md section 9): serial vs parallel checking layer.
//
// The paper's 300-second budget covers the whole ASURA invariant suite; the
// parallel runner fans the suite out across the shared pool (one task per
// invariant) and the VCG composition builds its five quad-placement
// relations concurrently.  Each workload is timed at --jobs 1 and at higher
// lane counts; the determinism contract (identical output at any jobs
// value) is what makes the comparison apples-to-apples.
//
// The speedup-at-N-threads summary is emitted twice: as benchmark counters
// (`jobs`) on each timing, and as one machine-readable
// `# suite_speedup {...}` JSON line plus `bench.suite_*_us` metrics for
// harnesses that scrape stdout.  On a single-core container the speedup is
// ~1x by construction; the infrastructure reports whatever the hardware
// gives it.
//
// `--smoke` (stripped before google-benchmark sees argv) restricts the
// google-benchmark sweep to the jobs=1 variants and takes single
// measurements in the speedup reports — the CI perf-smoke configuration.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.hpp"
#include "checks/invariant.hpp"
#include "checks/vcg.hpp"
#include "relational/bytecode.hpp"
#include "core/pool.hpp"
#include "obs/obs.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

bool g_smoke = false;

/// The ASURA invariant suite through the session facade at `jobs` lanes.
void BM_InvariantSuite(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  Database db = asura_spec().database();
  db.set_jobs(jobs);
  InvariantChecker checker(db);
  std::size_t violated = 0;
  for (auto _ : state) {
    auto results = checker.check_all(asura_spec().invariants());
    violated = 0;
    for (const auto& r : results) {
      if (!r.holds) ++violated;
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["violated"] = static_cast<double>(violated);
}
BENCHMARK(BM_InvariantSuite)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

std::vector<ControllerTableRef> vcg_refs() {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : asura_spec().controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, asura_spec().database().get(c->name())));
  }
  return refs;
}

/// Full VCG deadlock analysis (placement relations + pairwise composition
/// + cycle search) under the paper's V5 assignment at `jobs` lanes.
void BM_VcgCompose(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  const auto refs = vcg_refs();
  const ChannelAssignment& v5 = asura_spec().assignment(asura::kAssignV5);
  std::size_t rows = 0;
  for (auto _ : state) {
    DeadlockOptions opts;
    opts.jobs = jobs;
    DeadlockAnalysis analysis(refs, v5, opts);
    rows = analysis.protocol_rows().size();
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["pdt_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_VcgCompose)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// One direct serial-vs-parallel measurement outside the google-benchmark
/// loop, recorded into the metrics registry so the scraped `# metrics`
/// JSON carries the speedup inputs.
void report_suite_speedup() {
  using clock = std::chrono::steady_clock;
  const std::size_t wide = core::Pool::default_jobs();

  auto time_suite = [&](std::size_t jobs) {
    Database db = asura_spec().database();
    db.set_jobs(jobs);
    InvariantChecker checker(db);
    const auto t0 = clock::now();
    auto results = checker.check_all(asura_spec().invariants());
    benchmark::DoNotOptimize(results);
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 t0)
        .count();
  };
  // Warm caches (lazy indexes, symbol interning), then take the best of
  // several runs per config so the ratio reflects steady state, not noise
  // (one run each under --smoke).
  (void)time_suite(1);
  auto best_of = [&](std::size_t jobs) {
    auto best = time_suite(jobs);
    for (int i = 0; i < (g_smoke ? 0 : 4); ++i) {
      best = std::min(best, time_suite(jobs));
    }
    return best;
  };
  const auto serial_us = best_of(1);
  const auto parallel_us = best_of(wide);

  CCSQL_COUNT("bench.suite_serial_us", static_cast<std::uint64_t>(serial_us));
  CCSQL_COUNT("bench.suite_parallel_us",
              static_cast<std::uint64_t>(parallel_us));
  CCSQL_COUNT("bench.suite_jobs", static_cast<std::uint64_t>(wide));
  std::printf(
      "# suite_speedup {\"jobs\":%zu,\"serial_us\":%lld,\"parallel_us\":%lld,"
      "\"speedup\":%.2f}\n",
      wide, static_cast<long long>(serial_us),
      static_cast<long long>(parallel_us),
      parallel_us > 0 ? static_cast<double>(serial_us) /
                            static_cast<double>(parallel_us)
                      : 0.0);
}

/// The same suite timed with the bytecode predicate engine on and off
/// (interpreted CompiledExpr fallback), at jobs=1 so the engines are
/// compared head to head without pool scheduling in the way.  Emitted as a
/// `# bytecode_suite {...}` JSON line plus `bench.suite_bytecode_*_us`
/// metrics; the engine flag is restored afterwards.
void report_bytecode_suite() {
  using clock = std::chrono::steady_clock;
  const bool before = bytecode_enabled();

  auto time_suite = [&](bool engine_on) {
    set_bytecode_enabled(engine_on);
    Database db = asura_spec().database();
    db.set_jobs(1);
    InvariantChecker checker(db);
    const auto t0 = clock::now();
    auto results = checker.check_all(asura_spec().invariants());
    benchmark::DoNotOptimize(results);
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 t0)
        .count();
  };
  auto best_of = [&](bool engine_on) {
    auto best = time_suite(engine_on);
    for (int i = 0; i < (g_smoke ? 0 : 4); ++i) {
      best = std::min(best, time_suite(engine_on));
    }
    return best;
  };
  const auto interp_us = best_of(false);
  const auto bytecode_us = best_of(true);
  set_bytecode_enabled(before);

  CCSQL_COUNT("bench.suite_interp_us", static_cast<std::uint64_t>(interp_us));
  CCSQL_COUNT("bench.suite_bytecode_us",
              static_cast<std::uint64_t>(bytecode_us));
  std::printf(
      "# bytecode_suite {\"interp_us\":%lld,\"bytecode_us\":%lld,"
      "\"speedup\":%.2f}\n",
      static_cast<long long>(interp_us), static_cast<long long>(bytecode_us),
      bytecode_us > 0 ? static_cast<double>(interp_us) /
                            static_cast<double>(bytecode_us)
                      : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark parses argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  std::printf("# Experiment SUITE: serial vs parallel ASURA invariant suite "
              "and VCG composition (pool default_jobs = %zu)%s\n",
              ccsql::core::Pool::default_jobs(), g_smoke ? " (smoke)" : "");
  enable_metrics();
  // Smoke mode keeps only the jobs=1 sweep variants: the speedup reports
  // below still cover the parallel path, without the full 8-config matrix.
  static char smoke_filter[] = "--benchmark_filter=/1$";
  std::vector<char*> bench_args(argv, argv + argc);
  if (g_smoke) bench_args.push_back(smoke_filter);
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  benchmark::RunSpecifiedBenchmarks();
  report_suite_speedup();
  report_bytecode_suite();
  finish_metrics("bench_suite");
  return 0;
}
