// Experiment TBL-D / FIG3 (DESIGN.md): controller-table generation.
//
// Reproduces the paper's section 3 cost story: incremental generation (one
// column at a time, pruning after each) produces the directory controller
// table in interactive time, while solving the conjunction monolithically
// over the full cross product blows up exponentially with the column count
// ("a few minutes ... whereas it takes around 6 hours" on their Oracle8 /
// Sparc 10 setup).  We sweep the column-count prefix of D for both
// strategies and report the incremental generation of every full controller
// table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "solver/generator.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

void BM_IncrementalPrefix(benchmark::State& state) {
  GenerationInput in = prefix_input(asura_spec(), asura::kDirectory,
                                    static_cast<std::size_t>(state.range(0)));
  std::size_t rows = 0;
  for (auto _ : state) {
    Table t = generate_incremental(in);
    rows = t.row_count();
    benchmark::DoNotOptimize(t);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["cross"] =
      static_cast<double>(in.cross_cardinality());
}
BENCHMARK(BM_IncrementalPrefix)->DenseRange(4, 14, 2)->Unit(benchmark::kMicrosecond);

void BM_MonolithicPrefix(benchmark::State& state) {
  GenerationInput in = prefix_input(asura_spec(), asura::kDirectory,
                                    static_cast<std::size_t>(state.range(0)));
  std::size_t rows = 0;
  for (auto _ : state) {
    Table t = generate_monolithic(in);
    rows = t.row_count();
    benchmark::DoNotOptimize(t);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["cross"] =
      static_cast<double>(in.cross_cardinality());
}
// Beyond ~14 columns the cross product is out of reach — exactly the
// paper's point.
BENCHMARK(BM_MonolithicPrefix)->DenseRange(4, 14, 2)->Unit(benchmark::kMicrosecond);

void BM_GenerateController(benchmark::State& state, const char* name) {
  const ProtocolSpec& spec = asura_spec();
  const GenerationInput& in =
      spec.controller(name).generation_input(&spec.database().functions());
  std::size_t rows = 0;
  for (auto _ : state) {
    Table t = generate_incremental(in);
    rows = t.row_count();
    benchmark::DoNotOptimize(t);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK_CAPTURE(BM_GenerateController, D, ccsql::asura::kDirectory)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GenerateController, M, ccsql::asura::kMemory)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GenerateController, NC, ccsql::asura::kNode)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GenerateController, CC, ccsql::asura::kCache)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GenerateController, RAC, ccsql::asura::kRac)
    ->Unit(benchmark::kMicrosecond);

/// Ablation: the same columns and constraints, but generated in reversed
/// column order.  Constraints bind late, pruning disappears, and the cost
/// approaches the monolithic cross product — the paper's "inputs first"
/// ordering is what makes incremental generation fast.
void BM_IncrementalReversedOrder(benchmark::State& state) {
  GenerationInput in = reversed_prefix_input(
      asura_spec(), asura::kDirectory,
      static_cast<std::size_t>(state.range(0)));
  std::size_t rows = 0;
  for (auto _ : state) {
    Table t = generate_incremental(in);
    rows = t.row_count();
    benchmark::DoNotOptimize(t);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_IncrementalReversedOrder)->DenseRange(4, 10, 2)
    ->Unit(benchmark::kMicrosecond);

/// Incremental re-generation after a constraint update (the paper: "the use
/// of constraints also considerably reduces the time to update the
/// controller tables") — regenerate D from scratch, which is the update
/// cost in this methodology.
void BM_FullProtocolGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto spec = asura::make_asura();
    const Catalog& db = spec->database().catalog();
    benchmark::DoNotOptimize(db.size());
  }
}
BENCHMARK(BM_FullProtocolGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  // Print the FIG3/TBL-D context rows the paper reports before timing.
  const Table& d = asura_spec().database().get(asura::kDirectory);
  std::printf("# Experiment TBL-D: directory controller D = %zu rows x %zu "
              "cols, %zu busy states (paper: ~500 x 30, ~40 busy states)\n",
              d.row_count(), d.column_count(), asura::busy_states().size());
  IncrementalTrace trace;
  asura_spec().controller(asura::kDirectory).generate(
      &asura_spec().database().functions(), &trace);
  std::printf("# incremental pruning trace (column: rows-after):");
  for (const auto& s : trace.steps) {
    std::printf(" %s:%llu", s.column.c_str(),
                static_cast<unsigned long long>(s.rows_after));
  }
  std::printf("\n");
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
