// Experiment REACH (DESIGN.md): the model-checking baseline.
//
// The paper (section 4.2) positions SQL static analysis against model
// checkers: "Model checkers ... have a lot of reasoning power and can
// detect such deadlocks.  However, to use these tools, the controller
// tables need to be extensively abstracted to avoid the state explosion
// problem."  This bench quantifies that: exhaustive explicit-state
// exploration of the same table-driven protocol grows exponentially with
// the configuration, while the complete SQL deadlock analysis stays at
// milliseconds; both find the Figure 4 deadlock.
//
// The parallel/symmetry legs measure how far the engineered explorer
// (checks/reach_parallel.cpp) pushes that wall: wave-parallel BFS over a
// sharded 128-bit visited set, and orbit canonicalization that divides the
// state count by the quad/address symmetry group.
//
// `--smoke` runs a fixed set of legs without google-benchmark and emits a
// ccsql-bench/1 document for the CI perf-smoke job (states/sec rates carry
// the `_qps` unit so bench_diff treats drops, not gains, as regressions).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hpp"
#include "checks/reach.hpp"
#include "checks/vcg.hpp"
#include "core/pool.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

void BM_ExhaustiveExploration(benchmark::State& state) {
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 1;
  cfg.ops_per_node = static_cast<int>(state.range(0));
  std::uint64_t states = 0;
  bool ok = false;
  for (auto _ : state) {
    ReachResult r =
        explore(asura_spec(), asura_spec().assignment(asura::kAssignV5Fix),
                cfg);
    states = r.states;
    ok = r.verified();
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["verified"] = ok ? 1 : 0;
}
BENCHMARK(BM_ExhaustiveExploration)->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelExploration(benchmark::State& state) {
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 4;
  cfg.ops_per_node = 1;
  cfg.jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t states = 0;
  for (auto _ : state) {
    ReachParallelResult r = explore_parallel(
        asura_spec(), asura_spec().assignment(asura::kAssignV5Fix), cfg);
    states = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_ParallelExploration)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SymmetryReducedExploration(benchmark::State& state) {
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 4;
  cfg.ops_per_node = 1;
  cfg.symmetry = true;
  std::uint64_t states = 0;
  std::uint64_t group = 0;
  for (auto _ : state) {
    ReachParallelResult r = explore_parallel(
        asura_spec(), asura_spec().assignment(asura::kAssignV5Fix), cfg);
    states = r.states;
    group = r.canon_group;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["canon_group"] = static_cast<double>(group);
}
BENCHMARK(BM_SymmetryReducedExploration)->Unit(benchmark::kMillisecond);

void BM_TimeToFigure4Witness(benchmark::State& state) {
  // Directed configuration: two same-home addresses, read/atomic traffic,
  // one remote requester — the smallest space containing the Figure 4
  // wedge (see checks/reach.hpp inject_ops/ops_by_node).
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 3;
  cfg.ops_per_node = 2;
  cfg.inject_ops = {"prd", "patomic"};
  cfg.ops_by_node = {2, 1};
  cfg.stop_at_first_deadlock = true;
  std::uint64_t states = 0;
  std::size_t trace = 0;
  for (auto _ : state) {
    ReachParallelResult r = explore_parallel(
        asura_spec(), asura_spec().assignment(asura::kAssignV5), cfg);
    states = r.states;
    trace = r.deadlock_trace.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["states_to_witness"] = static_cast<double>(states);
  state.counters["witness_actions"] = static_cast<double>(trace);
}
BENCHMARK(BM_TimeToFigure4Witness)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SqlAnalysisForComparison(benchmark::State& state) {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : asura_spec().controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, asura_spec().database().get(c->name())));
  }
  std::size_t cycles = 0;
  for (auto _ : state) {
    DeadlockAnalysis analysis(refs,
                              asura_spec().assignment(asura::kAssignV5));
    cycles = analysis.cycles().size();
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SqlAnalysisForComparison)->Unit(benchmark::kMillisecond);

void set_metric(const std::string& name, std::uint64_t value) {
  obs::Tracer::global().metrics().set(name, value);
}

std::uint64_t rate(std::uint64_t states, double seconds) {
  return static_cast<std::uint64_t>(states / (seconds > 0 ? seconds : 1e-9));
}

/// The CI perf-smoke legs: fixed configs, one run each, ccsql-bench/1 out.
int run_smoke() {
  std::printf("# Experiment REACH (smoke): parallel explorer rates "
              "(pool default_jobs = %zu)\n",
              core::Pool::default_jobs());
  enable_metrics();

  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 4;
  cfg.ops_per_node = 1;

  // Sequential oracle and the parallel explorer on the same config.
  const ReachResult seq = explore(
      asura_spec(), asura_spec().assignment(asura::kAssignV5Fix), cfg);
  set_metric("bench.reach.seq_states", seq.states);
  set_metric("bench.reach.seq_states_per_sec_qps",
             rate(seq.states, seq.seconds));

  const ReachParallelResult par = explore_parallel(
      asura_spec(), asura_spec().assignment(asura::kAssignV5Fix), cfg);
  set_metric("bench.reach.par_states", par.states);
  set_metric("bench.reach.par_waves", par.waves);
  set_metric("bench.reach.par_states_per_sec_qps",
             rate(par.states, par.seconds));
  std::printf("#   parallel: %llu states in %.2fs (%llu/s)\n",
              static_cast<unsigned long long>(par.states), par.seconds,
              static_cast<unsigned long long>(rate(par.states, par.seconds)));

  cfg.symmetry = true;
  const ReachParallelResult sym = explore_parallel(
      asura_spec(), asura_spec().assignment(asura::kAssignV5Fix), cfg);
  set_metric("bench.reach.sym_states", sym.states);
  set_metric("bench.reach.sym_canon_group", sym.canon_group);
  set_metric("bench.reach.sym_states_per_sec_qps",
             rate(sym.states, sym.seconds));
  set_metric("bench.reach.sym_reduction_pct",
             sym.states > 0 ? par.states * 100 / sym.states : 0);
  std::printf("#   symmetry: %llu states (group %llu, %llux reduction)\n",
              static_cast<unsigned long long>(sym.states),
              static_cast<unsigned long long>(sym.canon_group),
              static_cast<unsigned long long>(
                  sym.states > 0 ? par.states / sym.states : 0));

  // Time-to-witness on the directed Figure 4 configuration.
  ReachParallelConfig fig4;
  fig4.n_quads = 2;
  fig4.n_addrs = 3;
  fig4.ops_per_node = 2;
  fig4.inject_ops = {"prd", "patomic"};
  fig4.ops_by_node = {2, 1};
  fig4.stop_at_first_deadlock = true;
  const ReachParallelResult wit = explore_parallel(
      asura_spec(), asura_spec().assignment(asura::kAssignV5), fig4);
  set_metric("bench.reach.witness_states", wit.states);
  set_metric("bench.reach.witness_actions", wit.deadlock_trace.size());
  set_metric("bench.reach.witness_states_per_sec_qps",
             rate(wit.states, wit.seconds));
  std::printf("#   witness: %zu actions after %llu states\n",
              wit.deadlock_trace.size(),
              static_cast<unsigned long long>(wit.states));

  finish_metrics("bench_reach");
  // The smoke run doubles as a sanity gate: the verdicts must hold.
  const bool ok = seq.verified() && par.verified() &&
                  par.states == seq.states && sym.verified() &&
                  wit.deadlock_states > 0;
  if (!ok) std::fprintf(stderr, "bench_reach: smoke verdict mismatch\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  std::printf("# Experiment REACH: state explosion vs SQL static analysis\n");
  std::printf("# config (quads,addrs,ops) -> states (V5fix, complete?)\n");
  for (auto [q, a, o] : {std::tuple{1, 1, 1}, {2, 1, 1}, {2, 1, 2},
                         {2, 2, 2}}) {
    ReachConfig cfg;
    cfg.n_quads = q;
    cfg.n_addrs = a;
    cfg.ops_per_node = o;
    cfg.max_states = 1'000'000;
    ReachResult r =
        explore(asura_spec(), asura_spec().assignment(asura::kAssignV5Fix),
                cfg);
    std::printf("#   (%d,%d,%d): %llu states, %s, %.2fs\n", q, a, o,
                static_cast<unsigned long long>(r.states),
                r.complete ? "complete" : "TRUNCATED", r.seconds);
  }
  std::printf("# the SQL deadlock analysis of the same tables is complete "
              "in ~2 ms (below)\n");
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
