// Experiment REACH (DESIGN.md): the model-checking baseline.
//
// The paper (section 4.2) positions SQL static analysis against model
// checkers: "Model checkers ... have a lot of reasoning power and can
// detect such deadlocks.  However, to use these tools, the controller
// tables need to be extensively abstracted to avoid the state explosion
// problem."  This bench quantifies that: exhaustive explicit-state
// exploration of the same table-driven protocol grows exponentially with
// the configuration, while the complete SQL deadlock analysis stays at
// milliseconds; both find the Figure 4 deadlock.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "checks/reach.hpp"
#include "checks/vcg.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

void BM_ExhaustiveExploration(benchmark::State& state) {
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 1;
  cfg.ops_per_node = static_cast<int>(state.range(0));
  std::uint64_t states = 0;
  bool ok = false;
  for (auto _ : state) {
    ReachResult r =
        explore(asura_spec(), asura_spec().assignment(asura::kAssignV5Fix),
                cfg);
    states = r.states;
    ok = r.verified();
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["verified"] = ok ? 1 : 0;
}
BENCHMARK(BM_ExhaustiveExploration)->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_TimeToFigure4Witness(benchmark::State& state) {
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 3;
  cfg.ops_per_node = 2;
  cfg.stop_at_first_deadlock = true;
  std::uint64_t states = 0;
  for (auto _ : state) {
    ReachResult r =
        explore(asura_spec(), asura_spec().assignment(asura::kAssignV5), cfg);
    states = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states_to_witness"] = static_cast<double>(states);
}
BENCHMARK(BM_TimeToFigure4Witness)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SqlAnalysisForComparison(benchmark::State& state) {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : asura_spec().controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, asura_spec().database().get(c->name())));
  }
  std::size_t cycles = 0;
  for (auto _ : state) {
    DeadlockAnalysis analysis(refs,
                              asura_spec().assignment(asura::kAssignV5));
    cycles = analysis.cycles().size();
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SqlAnalysisForComparison)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  std::printf("# Experiment REACH: state explosion vs SQL static analysis\n");
  std::printf("# config (quads,addrs,ops) -> states (V5fix, complete?)\n");
  for (auto [q, a, o] : {std::tuple{1, 1, 1}, {2, 1, 1}, {2, 1, 2},
                         {2, 2, 2}}) {
    ReachConfig cfg;
    cfg.n_quads = q;
    cfg.n_addrs = a;
    cfg.ops_per_node = o;
    cfg.max_states = 1'000'000;
    ReachResult r =
        explore(asura_spec(), asura_spec().assignment(asura::kAssignV5Fix),
                cfg);
    std::printf("#   (%d,%d,%d): %llu states, %s, %.2fs\n", q, a, o,
                static_cast<unsigned long long>(r.states),
                r.complete ? "complete" : "TRUNCATED", r.seconds);
  }
  std::printf("# the SQL deadlock analysis of the same tables is complete "
              "in ~2 ms (below)\n");
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
