// Experiment SIM (DESIGN.md): dynamic validation of the protocol tables.
//
// Shows, as data, that the Figure 4 deadlock is real: under V5 the scripted
// interleaving wedges (and randomized workloads with small channels wedge
// with measurable probability), while under V5fix every run completes.
// Also reports simulator throughput (transactions per second) as the
// substrate cost of this validation step.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/machine.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;
using namespace ccsql::sim;

SimResult run_fig4(const char* assignment) {
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 6;
  cfg.channel_capacity = 1;
  Machine m(asura_spec(), asura_spec().assignment(assignment), cfg);
  m.set_memory_latency(16);
  m.set_line(2, "MESI", {2});
  m.set_line(5, "MESI", {0});
  m.script(0, "pwb", 5);
  m.script(1, "pwr", 2);
  return m.run();
}

void BM_Fig4Scenario(benchmark::State& state, const char* assignment) {
  std::uint64_t deadlocks = 0, runs = 0;
  for (auto _ : state) {
    SimResult r = run_fig4(assignment);
    ++runs;
    if (r.deadlocked) ++deadlocks;
    benchmark::DoNotOptimize(r);
  }
  state.counters["deadlock_rate"] =
      runs ? static_cast<double>(deadlocks) / static_cast<double>(runs) : 0;
}
BENCHMARK_CAPTURE(BM_Fig4Scenario, V5, ccsql::asura::kAssignV5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Fig4Scenario, V5fix, ccsql::asura::kAssignV5Fix)
    ->Unit(benchmark::kMicrosecond);

SimResult run_random(const char* assignment, unsigned seed, int txns,
                     int capacity) {
  SimConfig cfg;
  cfg.n_quads = 4;
  cfg.n_addrs = 8;
  cfg.channel_capacity = capacity;
  cfg.transactions_per_node = txns;
  cfg.seed = seed;
  Machine m(asura_spec(), asura_spec().assignment(assignment), cfg);
  m.set_memory_latency(3);
  m.enable_random_workload();
  return m.run();
}

void BM_RandomWorkloadThroughput(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  std::uint64_t total_txns = 0;
  unsigned seed = 1;
  for (auto _ : state) {
    SimResult r = run_random(ccsql::asura::kAssignV5Fix, seed++, txns, 2);
    total_txns += static_cast<std::uint64_t>(r.transactions_done);
    if (!r.completed || !r.errors.empty()) {
      state.SkipWithError("unhealthy run");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["txns/s"] = benchmark::Counter(
      static_cast<double>(total_txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RandomWorkloadThroughput)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  std::printf("# Experiment SIM: Figure 4 deadlock, dynamically\n");
  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    SimResult r = run_fig4(a);
    std::printf("#   fig4 under %-6s: %s in %llu steps\n", a,
                r.deadlocked ? "DEADLOCK" : (r.completed ? "completed"
                                                          : "stalled"),
                static_cast<unsigned long long>(r.steps));
  }
  // Deadlock manifestation rate across random seeds, by channel capacity:
  // deeper channels hide the Figure 4 wedge from random testing, which is
  // why the static analysis matters.
  for (int cap : {1, 2, 4}) {
    for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
      int deadlocked = 0, unhealthy = 0;
      const int kRuns = 60;
      for (unsigned seed = 1; seed <= kRuns; ++seed) {
        SimResult r = run_random(a, seed, 40, cap);
        if (r.deadlocked) ++deadlocked;
        if (!r.errors.empty()) ++unhealthy;
      }
      std::printf("#   random (cap=%d, 60 seeds) under %-6s: %d/%d runs "
                  "deadlock, %d coherence violations\n",
                  cap, a, deadlocked, kRuns, unhealthy);
    }
  }
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
