// Experiment SIM (DESIGN.md): dynamic validation of the protocol tables.
//
// Shows, as data, that the Figure 4 deadlock is real: under V5 the scripted
// interleaving wedges (and randomized workloads with small channels wedge
// with measurable probability), while under V5fix every run completes.
// Also reports simulator throughput (transactions per second) as the
// substrate cost of this validation step.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hpp"
#include "core/pool.hpp"
#include "sim/machine.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;
using namespace ccsql::sim;

SimResult run_fig4(const char* assignment) {
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 6;
  cfg.channel_capacity = 1;
  Machine m(asura_spec(), asura_spec().assignment(assignment), cfg);
  m.set_memory_latency(16);
  m.set_line(2, "MESI", {2});
  m.set_line(5, "MESI", {0});
  m.script(0, "pwb", 5);
  m.script(1, "pwr", 2);
  return m.run();
}

void BM_Fig4Scenario(benchmark::State& state, const char* assignment) {
  std::uint64_t deadlocks = 0, runs = 0;
  for (auto _ : state) {
    SimResult r = run_fig4(assignment);
    ++runs;
    if (r.deadlocked) ++deadlocks;
    benchmark::DoNotOptimize(r);
  }
  state.counters["deadlock_rate"] =
      runs ? static_cast<double>(deadlocks) / static_cast<double>(runs) : 0;
}
BENCHMARK_CAPTURE(BM_Fig4Scenario, V5, ccsql::asura::kAssignV5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Fig4Scenario, V5fix, ccsql::asura::kAssignV5Fix)
    ->Unit(benchmark::kMicrosecond);

SimResult run_random(const char* assignment, unsigned seed, int txns,
                     int capacity) {
  SimConfig cfg;
  cfg.n_quads = 4;
  cfg.n_addrs = 8;
  cfg.channel_capacity = capacity;
  cfg.transactions_per_node = txns;
  cfg.seed = seed;
  Machine m(asura_spec(), asura_spec().assignment(assignment), cfg);
  m.set_memory_latency(3);
  m.enable_random_workload();
  return m.run();
}

void BM_RandomWorkloadThroughput(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  std::uint64_t total_txns = 0;
  unsigned seed = 1;
  for (auto _ : state) {
    SimResult r = run_random(ccsql::asura::kAssignV5Fix, seed++, txns, 2);
    total_txns += static_cast<std::uint64_t>(r.transactions_done);
    if (!r.completed || !r.errors.empty()) {
      state.SkipWithError("unhealthy run");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["txns/s"] = benchmark::Counter(
      static_cast<double>(total_txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RandomWorkloadThroughput)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void set_metric(const std::string& name, std::uint64_t value) {
  obs::Tracer::global().metrics().set(name, value);
}

std::uint64_t rate(std::uint64_t events, double seconds) {
  return static_cast<std::uint64_t>(events / (seconds > 0 ? seconds : 1e-9));
}

/// One single-machine throughput run on the reference 4-quad config, with
/// the dispatch engine selected (dense fast path vs hashed baseline).
SimResult run_throughput(bool dense) {
  SimConfig cfg;
  cfg.n_quads = 4;
  cfg.n_addrs = 8;
  cfg.channel_capacity = 2;
  cfg.transactions_per_node = 1500;
  cfg.max_steps = 2000000;
  cfg.seed = 7;
  cfg.dense_dispatch = dense;
  Machine m(asura_spec(), asura_spec().assignment(ccsql::asura::kAssignV5Fix),
            cfg);
  m.set_memory_latency(3);
  m.enable_workload();
  return m.run();
}

/// The CI perf-smoke legs: fixed configs, one run each, ccsql-bench/1 out.
int run_smoke() {
  std::printf("# Experiment SIM (smoke): simulator throughput in events/sec "
              "(pool default_jobs = %zu)\n",
              core::Pool::default_jobs());
  enable_metrics();

  // Dense dispatch vs the hashed TableIndex baseline on the same config:
  // identical trajectories (same events), different engine cost.
  const SimResult dense = run_throughput(/*dense=*/true);
  const SimResult hashed = run_throughput(/*dense=*/false);
  set_metric("bench.sim.dense_events", dense.counters.events());
  set_metric("bench.sim.dense_events_per_sec_qps",
             rate(dense.counters.events(), dense.seconds));
  set_metric("bench.sim.hashed_events_per_sec_qps",
             rate(hashed.counters.events(), hashed.seconds));
  set_metric("bench.sim.dense_speedup_pct",
             hashed.counters.events() > 0 && hashed.seconds > 0
                 ? rate(dense.counters.events(), dense.seconds) * 100 /
                       std::max<std::uint64_t>(
                           1, rate(hashed.counters.events(), hashed.seconds))
                 : 0);
  std::printf("#   dense:  %llu events in %.3fs (%llu/s)\n",
              static_cast<unsigned long long>(dense.counters.events()),
              dense.seconds,
              static_cast<unsigned long long>(
                  rate(dense.counters.events(), dense.seconds)));
  std::printf("#   hashed: %llu events in %.3fs (%llu/s)\n",
              static_cast<unsigned long long>(hashed.counters.events()),
              hashed.seconds,
              static_cast<unsigned long long>(
                  rate(hashed.counters.events(), hashed.seconds)));

  // Pool-parallel sweep over the default validation grid.
  const SweepEngine engine(asura_spec());
  const auto grid = default_sweep_grid(ccsql::asura::kAssignV5Fix, 2);
  const SweepResult sweep = engine.run(grid, core::Pool::default_jobs());
  set_metric("bench.sim.sweep_runs", grid.size());
  set_metric("bench.sim.sweep_events", sweep.events);
  set_metric("bench.sim.sweep_events_per_sec_qps", sweep.events_per_sec);
  set_metric("bench.sim.sweep_cycles", sweep.merged.cycles);
  std::printf("#   sweep:  %zu runs, %llu events in %.3fs (%llu/s)\n",
              grid.size(), static_cast<unsigned long long>(sweep.events),
              sweep.seconds,
              static_cast<unsigned long long>(sweep.events_per_sec));

  finish_metrics("bench_sim");
  // The smoke run doubles as a sanity gate: identical trajectories across
  // dispatch engines, and a fully healthy default sweep.
  const bool ok = dense.healthy() && hashed.healthy() &&
                  dense.counters.events() == hashed.counters.events() &&
                  dense.steps == hashed.steps && sweep.all_healthy();
  if (!ok) std::fprintf(stderr, "bench_sim: smoke verdict mismatch\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  std::printf("# Experiment SIM: Figure 4 deadlock, dynamically\n");
  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    SimResult r = run_fig4(a);
    std::printf("#   fig4 under %-6s: %s in %llu steps\n", a,
                r.deadlocked ? "DEADLOCK" : (r.completed ? "completed"
                                                          : "stalled"),
                static_cast<unsigned long long>(r.steps));
  }
  // Deadlock manifestation rate across random seeds, by channel capacity:
  // deeper channels hide the Figure 4 wedge from random testing, which is
  // why the static analysis matters.
  for (int cap : {1, 2, 4}) {
    for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
      int deadlocked = 0, unhealthy = 0;
      const int kRuns = 60;
      for (unsigned seed = 1; seed <= kRuns; ++seed) {
        SimResult r = run_random(a, seed, 40, cap);
        if (r.deadlocked) ++deadlocked;
        if (!r.errors.empty()) ++unhealthy;
      }
      std::printf("#   random (cap=%d, 60 seeds) under %-6s: %d/%d runs "
                  "deadlock, %d coherence violations\n",
                  cap, a, deadlocked, kRuns, unhealthy);
    }
  }
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_metrics_summary();
  return 0;
}
