// Experiment PLAN (DESIGN.md section 8): naive vs planned query execution.
//
// The paper leans on Oracle8's optimizer to make invariant queries cheap;
// here the ccsql planner (src/plan) provides the same leverage.  Each shape
// below is timed through the reference executor (Catalog::run_naive) and
// through the planner (plan::run_select), on the real ASURA tables.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "plan/planner.hpp"
#include "relational/database.hpp"
#include "relational/query.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

// `--smoke` (stripped before google-benchmark sees argv) shrinks the
// synthetic workloads so the CI perf-smoke job finishes in seconds while
// keeping every shape (scan, join, count) on the same code paths.
bool g_smoke = false;

// The cross+equality shape of the mem-wb-reaches-completion invariant: the
// naive executor materialises the D x M cross product, the planner runs an
// index lookup feeding a hash join.
constexpr const char* kJoinSql =
    "Select a.memmsg, b.inmsg, b.outmsg from D a, M b "
    "where a.memmsg = b.inmsg and a.memmsg = \"wb\" and "
    "not b.outmsg = \"compl\"";

// Self-join of the 331-row directory implementation table: the worst case
// for the naive cross product (~110k intermediate rows).
constexpr const char* kSelfJoinSql =
    "Select a.inmsg, b.inmsg from D a, D b "
    "where a.memmsg = b.memmsg and a.memmsg = \"wb\" and "
    "not a.dirst = b.dirst";

// Single-table point-lookup shape (first SELECT of
// dir-state-pv-consistency).
constexpr const char* kPointSql =
    "Select dirst, dirpv from D where dirst = \"MESI\" and "
    "not dirpv = \"one\"";

void run_shape(benchmark::State& state, const char* sql, bool planned) {
  const Catalog& db = asura_spec().database().catalog();
  SelectStmt stmt = parse_select(sql);
  std::size_t rows = 0;
  for (auto _ : state) {
    Table t = planned ? plan::run_select(db, stmt) : db.run_naive(stmt);
    rows = t.row_count();
    benchmark::DoNotOptimize(t);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_JoinNaive(benchmark::State& state) { run_shape(state, kJoinSql, false); }
void BM_JoinPlanned(benchmark::State& state) {
  run_shape(state, kJoinSql, true);
}
BENCHMARK(BM_JoinNaive)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JoinPlanned)->Unit(benchmark::kMicrosecond);

void BM_SelfJoinNaive(benchmark::State& state) {
  run_shape(state, kSelfJoinSql, false);
}
void BM_SelfJoinPlanned(benchmark::State& state) {
  run_shape(state, kSelfJoinSql, true);
}
BENCHMARK(BM_SelfJoinNaive)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SelfJoinPlanned)->Unit(benchmark::kMicrosecond);

void BM_PointLookupNaive(benchmark::State& state) {
  run_shape(state, kPointSql, false);
}
void BM_PointLookupPlanned(benchmark::State& state) {
  run_shape(state, kPointSql, true);
}
BENCHMARK(BM_PointLookupNaive)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PointLookupPlanned)->Unit(benchmark::kMicrosecond);

// Emptiness is the invariant checker's fast path: the planner stops at the
// first row (Limit 1); the naive check materialises the whole result.
void BM_ExistsNaive(benchmark::State& state) {
  const Catalog& db = asura_spec().database().catalog();
  SelectStmt stmt = parse_select(kSelfJoinSql);
  for (auto _ : state) {
    bool empty = db.run_naive(stmt).row_count() == 0;
    benchmark::DoNotOptimize(empty);
  }
}
void BM_ExistsPlanned(benchmark::State& state) {
  const Catalog& db = asura_spec().database().catalog();
  SelectStmt stmt = parse_select(kSelfJoinSql);
  for (auto _ : state) {
    bool empty = plan::is_empty(db, stmt);
    benchmark::DoNotOptimize(empty);
  }
}
BENCHMARK(BM_ExistsNaive)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ExistsPlanned)->Unit(benchmark::kMicrosecond);

// ---- morsel-driven parallel execution --------------------------------------
//
// The ASURA tables are a few hundred rows — below the 2048-row parallel
// threshold — so the parallel operators are exercised on a seeded synthetic
// workload sized like a generated implementation table.  Identical output
// at every jobs value is enforced by tests/plan/parallel_property_test.cpp;
// here only the wall clock varies.

Database synthetic_db(std::size_t left_rows, std::size_t right_rows) {
  std::mt19937 rng(2026);
  auto randcol = [&](std::size_t n) { return "v" + std::to_string(rng() % n); };
  Catalog cat;
  Table l(Schema::of({"k", "p", "q"}));
  l.reserve_rows(left_rows);
  for (std::size_t i = 0; i < left_rows; ++i) {
    l.append_texts({randcol(4096), randcol(8), randcol(8)});
  }
  cat.put("L", std::move(l));
  Table r(Schema::of({"k", "r"}));
  r.reserve_rows(right_rows);
  for (std::size_t i = 0; i < right_rows; ++i) {
    r.append_texts({randcol(4096), randcol(8)});
  }
  cat.put("R", std::move(r));
  return Database(std::move(cat));
}

Database big_db() {
  return g_smoke ? synthetic_db(20'000, 8'000)
                 : synthetic_db(200'000, 50'000);
}

void run_parallel_shape(benchmark::State& state, const char* sql) {
  static Database db = big_db();
  db.set_planner(true).set_jobs(static_cast<std::size_t>(state.range(0)));
  SelectStmt stmt = parse_select(sql);
  std::size_t rows = 0;
  for (auto _ : state) {
    QueryResult qr = db.query(stmt);
    rows = qr.row_count();
    benchmark::DoNotOptimize(qr);
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_BigFilterParallel(benchmark::State& state) {
  run_parallel_shape(state, "select k, p from L where p = v3 and q = v5");
}
BENCHMARK(BM_BigFilterParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_BigJoinParallel(benchmark::State& state) {
  run_parallel_shape(state,
                     "select a.p, b.r from L a, R b where a.k = b.k "
                     "and a.p = v0 and b.r = v1");
}
BENCHMARK(BM_BigJoinParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BigCountParallel(benchmark::State& state) {
  run_parallel_shape(state, "select count(*) from L where p = v3");
}
BENCHMARK(BM_BigCountParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// ---- columnar 1M-row shapes ------------------------------------------------
//
// The acceptance gate for the columnar storage engine (DESIGN.md section
// 13): full-scan filter and many-to-many hash join over a 1M-row table,
// timed directly (best of 5) and emitted as scrapeable metrics that the CI
// perf-smoke job diffs against bench/baselines/query-smoke.json.
void report_query_timings(std::size_t rows) {
  using clock = std::chrono::steady_clock;
  Database db = synthetic_db(rows, rows / 4);
  db.set_planner(true);
  const SelectStmt scan =
      parse_select("select k, p from L where p = v3 and q = v5");
  const SelectStmt join =
      parse_select("select a.p, b.r from L a, R b where a.k = b.k");
  auto time_us = [&](const SelectStmt& stmt) {
    const auto t0 = clock::now();
    QueryResult qr = db.query(stmt);
    benchmark::DoNotOptimize(qr);
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 t0)
        .count();
  };
  auto best_of = [&](const SelectStmt& stmt) {
    auto best = time_us(stmt);
    for (int i = 0; i < 4; ++i) best = std::min(best, time_us(stmt));
    return best;
  };
  (void)time_us(join);  // warm (builds and caches the join index)
  const auto scan_us = best_of(scan);
  const auto join_us = best_of(join);
  CCSQL_COUNT("bench.query_rows", static_cast<std::uint64_t>(rows));
  CCSQL_COUNT("bench.query_scan_us", static_cast<std::uint64_t>(scan_us));
  CCSQL_COUNT("bench.query_join_us", static_cast<std::uint64_t>(join_us));
  std::printf(
      "# query_columnar {\"rows\":%zu,\"scan_us\":%lld,\"join_us\":%lld}\n",
      rows, static_cast<long long>(scan_us), static_cast<long long>(join_us));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsql;
  using namespace ccsql::bench;
  // Strip --smoke before google-benchmark parses argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  std::printf("# Experiment PLAN: naive executor vs query planner on ASURA "
              "invariant query shapes (D = %zu rows)%s\n",
              asura_spec().database().get("D").row_count(),
              g_smoke ? " (smoke)" : "");
  enable_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_query_timings(g_smoke ? 50'000 : 1'000'000);
  finish_metrics("bench_query");
  return 0;
}
