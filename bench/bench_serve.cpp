// Experiment SERVE (DESIGN.md section 12): the high-QPS serving layer.
//
// Sweeps concurrent session counts over the ASURA invariant suite through
// serve::Server — prepared-statement cache on — and reports QPS and
// latency percentiles per point, plus two contrast legs:
//
//  - cache off at 64 sessions (every query re-parses, re-plans and
//    re-compiles): the denominator of the cache speedup claim, and
//  - a writer leg, 8 sessions querying while a writer thread regenerates a
//    controller table on a cadence: readers must stay unblocked (QPS in
//    the same regime) and correct (zero violations).
//
// Emitted as `# serve_qps {...}` JSON lines plus `bench.serve.*` metrics
// in the ccsql-bench/1 document; `_qps` metrics are higher-is-better and
// bench_diff treats them so.  `--smoke` trims the sweep (no 512-session
// point, fewer queries per point) — the CI perf-smoke configuration.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace {

using namespace ccsql;
using namespace ccsql::bench;

bool g_smoke = false;

std::vector<std::string> invariant_sqls() {
  std::vector<std::string> out;
  for (const auto& inv : asura_spec().invariants()) out.push_back(inv.sql);
  return out;
}

struct Point {
  std::size_t sessions = 0;
  bool cache = true;
  std::size_t writer_swaps = 0;
  serve::DriveReport report;
  serve::ServerStats stats;
};

/// One sweep point: a fresh Server over a fresh protocol database, driven
/// until every session has run the suite `iterations` times.  Iterations
/// scale inversely with the session count so each point measures a similar
/// total query volume.
Point run_point(const std::vector<std::string>& sqls, std::size_t sessions,
                bool cache, std::size_t writer_swaps) {
  Point p;
  p.sessions = sessions;
  p.cache = cache;
  p.writer_swaps = writer_swaps;
  serve::ServerOptions opts;
  opts.use_plan_cache = cache;
  serve::Server server(asura_spec().database(), opts);
  serve::DriveOptions drive;
  drive.sessions = sessions;
  const std::size_t target_queries = g_smoke ? 4200 : 28000;
  drive.iterations =
      std::max<std::size_t>(1, target_queries / (sqls.size() * sessions));
  drive.writer_swaps = writer_swaps;
  if (writer_swaps > 0) {
    drive.writer_table = asura_spec().controllers().front()->name();
    drive.writer_period_us = 500;
  }
  p.report = serve::drive(server, sqls, drive);
  p.stats = server.stats();
  std::printf(
      "# serve_qps {\"sessions\":%zu,\"cache\":%s,\"writer_swaps\":%llu,"
      "\"queries\":%llu,\"violations\":%llu,\"qps\":%.0f,\"p50_us\":%u,"
      "\"p95_us\":%u,\"cache_hits\":%llu,\"cache_misses\":%llu}\n",
      sessions, cache ? "true" : "false",
      static_cast<unsigned long long>(p.report.writer_swaps),
      static_cast<unsigned long long>(p.report.queries),
      static_cast<unsigned long long>(p.report.violations), p.report.qps(),
      p.report.latency_percentile_us(0.5), p.report.latency_percentile_us(0.95),
      static_cast<unsigned long long>(p.stats.cache.hits),
      static_cast<unsigned long long>(p.stats.cache.misses));
  return p;
}

void set_metric(const std::string& name, std::uint64_t value) {
  obs::Tracer::global().metrics().set(name, value);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  std::printf("# Experiment SERVE: sessions sweep over the invariant suite "
              "(pool default_jobs = %zu)%s\n",
              core::Pool::default_jobs(), g_smoke ? " (smoke)" : "");
  enable_metrics();
  const std::vector<std::string> sqls = invariant_sqls();

  std::vector<std::size_t> sweep{1, 8, 64};
  if (!g_smoke) sweep.push_back(512);
  double qps64 = 0;
  for (const std::size_t sessions : sweep) {
    Point p = run_point(sqls, sessions, /*cache=*/true, /*writer_swaps=*/0);
    const std::string prefix =
        "bench.serve.s" + std::to_string(sessions) + "_";
    set_metric(prefix + "qps", static_cast<std::uint64_t>(p.report.qps()));
    set_metric(prefix + "p50_us", p.report.latency_percentile_us(0.5));
    set_metric(prefix + "p95_us", p.report.latency_percentile_us(0.95));
    if (sessions == 64) qps64 = p.report.qps();
  }

  // The speedup claim: cache vs re-parse/re-plan, both at 64 sessions.
  Point nocache = run_point(sqls, 64, /*cache=*/false, /*writer_swaps=*/0);
  set_metric("bench.serve.s64_nocache_qps",
             static_cast<std::uint64_t>(nocache.report.qps()));
  if (nocache.report.qps() > 0) {
    set_metric("bench.serve.cache_speedup_pct",
               static_cast<std::uint64_t>(qps64 / nocache.report.qps() * 100));
  }

  // Readers vs writer: swaps bump the catalog generation, invalidating
  // cached plans; violations must stay zero throughout.
  Point writer =
      run_point(sqls, 8, /*cache=*/true, /*writer_swaps=*/g_smoke ? 5 : 40);
  set_metric("bench.serve.writer_qps",
             static_cast<std::uint64_t>(writer.report.qps()));
  set_metric("bench.serve.writer_swaps", writer.report.writer_swaps);
  set_metric("bench.serve.writer_violations", writer.report.violations);
  set_metric("bench.serve.writer_invalidations",
             writer.stats.cache.invalidations);

  finish_metrics("bench_serve");
  return writer.report.violations == 0 ? 0 : 1;
}
