// bench_diff — compare two ccsql-bench/1 metrics documents.
//
//   bench_diff OLD.json NEW.json [--threshold PCT] [--report-only]
//
// OLD is the baseline (bench/baselines/*.json), NEW is a fresh run written
// via CCSQL_BENCH_OUT.  Metrics are matched by name; a `bench.*` time-unit
// metric (us/ms/ns) whose NEW value exceeds OLD by more than the threshold
// (default 20%) is a regression, as is a `bench.*` rate metric (qps —
// higher is better) whose NEW value falls short of OLD by more than the
// threshold.  Everything else — counts, bytes, percent, and the pool
// busy/idle nanos (scheduler residency, not workload speed) — is compared
// for information only.
//
// Exit status: 0 clean, 1 regression found (suppressed by --report-only,
// the CI bring-up mode) or unreadable input, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json_mini.hpp"

namespace {

using ccsql::obs::json::JValue;

struct Metric {
  double value = 0;
  std::string unit;
};

struct BenchDoc {
  std::string bench;
  std::string git_sha;
  double jobs = 0;
  std::map<std::string, Metric> metrics;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff OLD.json NEW.json [--threshold PCT] "
               "[--report-only]\n");
  return 2;
}

bool is_time_unit(const std::string& unit) {
  return unit == "us" || unit == "ms" || unit == "ns";
}

/// Higher-is-better units: a drop beyond the threshold is the regression.
bool is_rate_unit(const std::string& unit) { return unit == "qps"; }

/// Reads and validates one ccsql-bench/1 document.  Returns false (with a
/// message on stderr) on I/O, parse, or schema mismatch.
bool load(const char* path, BenchDoc& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JValue v;
  try {
    v = ccsql::obs::json::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path, e.what());
    return false;
  }
  if (!v.has("schema") || v.at("schema").str != "ccsql-bench/1") {
    std::fprintf(stderr, "bench_diff: %s: not a ccsql-bench/1 document\n",
                 path);
    return false;
  }
  out.bench = v.has("bench") ? v.at("bench").str : "?";
  out.git_sha = v.has("git_sha") ? v.at("git_sha").str : "unknown";
  out.jobs = v.has("jobs") ? v.at("jobs").number : 0;
  if (v.has("metrics")) {
    for (const JValue& m : v.at("metrics").arr) {
      if (!m.has("name") || !m.has("value")) continue;
      Metric metric;
      metric.value = m.at("value").number;
      metric.unit = m.has("unit") ? m.at("unit").str : "count";
      out.metrics.emplace(m.at("name").str, metric);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  double threshold_pct = 20.0;
  bool report_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--report-only") == 0) {
      report_only = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      return usage();
    }
  }
  if (old_path == nullptr || new_path == nullptr) return usage();

  BenchDoc oldd;
  BenchDoc newd;
  if (!load(old_path, oldd) || !load(new_path, newd)) return 1;
  if (oldd.bench != newd.bench) {
    std::fprintf(stderr, "bench_diff: comparing different benches (%s vs %s)\n",
                 oldd.bench.c_str(), newd.bench.c_str());
  }

  std::printf("bench_diff: %s  old=%s (sha %s)  new=%s (sha %s)  "
              "threshold %.0f%%\n",
              newd.bench.c_str(), old_path, oldd.git_sha.c_str(), new_path,
              newd.git_sha.c_str(), threshold_pct);
  std::printf("  %-32s %14s %14s %9s\n", "metric", "old", "new", "delta");

  int regressions = 0;
  std::size_t only_old = 0;
  std::size_t only_new = 0;
  for (const auto& [name, oldm] : oldd.metrics) {
    auto it = newd.metrics.find(name);
    if (it == newd.metrics.end()) {
      ++only_old;
      continue;
    }
    const Metric& newm = it->second;
    const double delta_pct =
        oldm.value > 0 ? (newm.value - oldm.value) / oldm.value * 100.0 : 0.0;
    const bool bench = name.rfind("bench.", 0) == 0;
    const bool timed = is_time_unit(oldm.unit) && bench;
    const bool rate = is_rate_unit(oldm.unit) && bench;
    const bool regressed =
        (timed && oldm.value > 0 &&
         newm.value > oldm.value * (1.0 + threshold_pct / 100.0)) ||
        (rate && oldm.value > 0 &&
         oldm.value > newm.value * (1.0 + threshold_pct / 100.0));
    if (regressed) ++regressions;
    std::printf("  %-32s %12.0f %s %12.0f %s %+8.1f%%%s\n", name.c_str(),
                oldm.value, oldm.unit.c_str(), newm.value, newm.unit.c_str(),
                delta_pct,
                regressed ? "  REGRESSION"
                          : (timed || rate ? "" : "  (info)"));
  }
  for (const auto& [name, newm] : newd.metrics) {
    if (oldd.metrics.find(name) == oldd.metrics.end()) ++only_new;
  }
  if (only_old > 0 || only_new > 0) {
    std::printf("  (%zu metrics only in old, %zu only in new)\n", only_old,
                only_new);
  }

  if (regressions > 0) {
    std::printf("bench_diff: %d regression%s beyond %.0f%%%s\n", regressions,
                regressions == 1 ? "" : "s", threshold_pct,
                report_only ? " (report-only, not failing)" : "");
    return report_only ? 0 : 1;
  }
  std::printf("bench_diff: no regressions beyond %.0f%%\n", threshold_pct);
  return 0;
}
