// Diagnostic: exhaustive exploration of small configurations.
#include <cstdio>
#include "checks/reach.hpp"
#include "protocol/asura/asura.hpp"
int main(int argc, char** argv) {
  using namespace ccsql;
  auto spec = asura::make_asura();
  ReachConfig cfg;
  cfg.n_quads = argc > 1 ? atoi(argv[1]) : 2;
  cfg.n_addrs = argc > 2 ? atoi(argv[2]) : 1;
  cfg.ops_per_node = argc > 3 ? atoi(argv[3]) : 2;
  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    ReachResult r = explore(*spec, spec->assignment(a), cfg);
    std::printf("%s: states=%llu transitions=%llu complete=%d deadlocks=%llu "
                "violations=%zu %.2fs\n",
                a, (unsigned long long)r.states,
                (unsigned long long)r.transitions, r.complete,
                (unsigned long long)r.deadlock_states, r.violations.size(),
                r.seconds);
    for (auto& v : r.violations) std::printf("  %s\n", v.c_str());
    if (r.deadlock_states) std::printf("%s", r.deadlock_example.c_str());
  }
  return 0;
}
