// Diagnostic: exhaustive exploration of small configurations.
//
//   reach_dump [QUADS [ADDRS [OPS]]] [--jobs N] [--symmetry] [--sequential]
//              [--max-states N] [--first-deadlock] [--trace] [--classify]
//
// Runs both channel assignments (V5 and the fixed V5) through the parallel
// explorer (or the sequential oracle with --sequential), prints the
// aggregate results, the deadlock witness trace when one exists (--trace
// prints every action), and with --classify labels each VCG cycle
// reachable / unreachable / budget against the explored state space.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "checks/reach.hpp"
#include "checks/vcg.hpp"
#include "core/pool.hpp"
#include "protocol/asura/asura.hpp"

int main(int argc, char** argv) {
  using namespace ccsql;
  auto spec = asura::make_asura();

  ReachParallelConfig cfg;
  bool sequential = false;
  bool classify = false;
  bool print_trace = false;
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const auto jobs = static_cast<std::size_t>(atoi(argv[++i]));
      cfg.jobs = jobs;
      core::Pool::set_default_jobs(jobs == 0 ? 1 : jobs);
    } else if (std::strcmp(argv[i], "--symmetry") == 0) {
      cfg.symmetry = true;
    } else if (std::strcmp(argv[i], "--sequential") == 0) {
      sequential = true;
    } else if (std::strcmp(argv[i], "--classify") == 0) {
      classify = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      print_trace = true;
    } else if (std::strcmp(argv[i], "--first-deadlock") == 0) {
      cfg.stop_at_first_deadlock = true;
    } else if (std::strcmp(argv[i], "--max-states") == 0 && i + 1 < argc) {
      cfg.max_states = static_cast<std::uint64_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--only-ops") == 0 && i + 1 < argc) {
      // Comma-separated op names, e.g. --only-ops prd,patomic
      for (const char* tok = std::strtok(argv[++i], ","); tok;
           tok = std::strtok(nullptr, ",")) {
        cfg.inject_ops.emplace_back(tok);
      }
    } else if (std::strcmp(argv[i], "--node-ops") == 0 && i + 1 < argc) {
      // Comma-separated per-node budgets, e.g. --node-ops 2,1
      for (const char* tok = std::strtok(argv[++i], ","); tok;
           tok = std::strtok(nullptr, ",")) {
        cfg.ops_by_node.push_back(atoi(tok));
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: reach_dump [QUADS [ADDRS [OPS]]] [--jobs N] "
                   "[--symmetry] [--sequential] [--max-states N] "
                   "[--first-deadlock] [--trace] [--classify] "
                   "[--only-ops A,B] [--node-ops N,M]\n");
      return 2;
    } else {
      positional.push_back(atoi(argv[i]));
    }
  }
  cfg.n_quads = positional.size() > 0 ? positional[0] : 2;
  cfg.n_addrs = positional.size() > 1 ? positional[1] : 1;
  cfg.ops_per_node = positional.size() > 2 ? positional[2] : 2;

  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    if (sequential) {
      ReachResult r = explore(*spec, spec->assignment(a), cfg);
      std::printf(
          "%s: states=%llu transitions=%llu complete=%d deadlocks=%llu "
          "violations=%zu %.2fs\n",
          a, (unsigned long long)r.states, (unsigned long long)r.transitions,
          r.complete, (unsigned long long)r.deadlock_states,
          r.violations.size(), r.seconds);
      for (auto& viol : r.violations) std::printf("  %s\n", viol.c_str());
      if (r.deadlock_states) std::printf("%s", r.deadlock_example.c_str());
      continue;
    }

    ReachParallelResult r =
        explore_parallel(*spec, spec->assignment(a), cfg);
    std::printf(
        "%s: states=%llu transitions=%llu complete=%d deadlocks=%llu "
        "violations=%zu waves=%llu dedup=%llu canon=%llu %.2fs "
        "(%.0f states/s)\n",
        a, (unsigned long long)r.states, (unsigned long long)r.transitions,
        r.complete, (unsigned long long)r.deadlock_states,
        r.violations.size(), (unsigned long long)r.waves,
        (unsigned long long)r.dedup_hits, (unsigned long long)r.canon_group,
        r.seconds, r.states / (r.seconds > 0 ? r.seconds : 1));
    for (auto& viol : r.violations) std::printf("  %s\n", viol.c_str());
    if (r.deadlock_states) {
      std::printf("%s", r.deadlock_example.c_str());
      std::printf("witness: %zu actions to the first deadlock\n",
                  r.deadlock_trace.size());
      if (print_trace) {
        for (const auto& act : r.deadlock_trace) {
          std::printf("  %s\n", act.to_string().c_str());
        }
      }
    }

    if (classify) {
      std::vector<ControllerTableRef> refs;
      for (const auto& c : spec->controllers()) {
        refs.push_back(ControllerTableRef::from_spec(
            *c, spec->database().get(c->name())));
      }
      DeadlockAnalysis analysis(refs, spec->assignment(a));
      const auto classifications = classify_cycles(
          *spec, spec->assignment(a), analysis.cycles(), cfg);
      std::printf("%s cycle classification:\n%s", a,
                  format_classification(classifications).c_str());
    }
  }
  return 0;
}
