// Diagnostic: run the section 5 mapping flow end to end.
#include <iostream>
#include "mapping/asura_map.hpp"
#include "protocol/asura/asura.hpp"

int main() {
  using namespace ccsql;
  auto spec = asura::make_asura();
  auto report = mapping::verify_directory_mapping(*spec);
  std::cout << "ED: " << report.ed_rows << " rows x " << report.ed_cols
            << " cols\n";
  for (const auto& [name, rows] : report.table_rows) {
    std::cout << "  " << name << ": " << rows << " rows\n";
  }
  std::cout << "ed_reconstructed=" << report.ed_reconstructed
            << " base_recovered=" << report.base_recovered
            << " contains_debugged=" << report.contains_debugged << "\n";
  return report.ok() ? 0 : 1;
}
