// Pool-parallel validation sweep across topologies / capacities / workload
// shapes / seeds, measured in events/sec (DESIGN.md §15).
//
// Usage: sim_sweep [--jobs N] [--seeds N] [--assignment V5fix]
//                  [--hashed] [--quiet]
//
// The grid is run through sim::SweepEngine: the controller tables are
// dense-compiled once and shared read-only across every run; --jobs (or
// CCSQL_JOBS) picks the pool fan-out.  Merged counters are byte-identical
// at any job count.  Exit status is non-zero when any run deadlocks,
// wedges against max_steps, or reports coherence/table errors — this is
// the CI gate the TSan leg drives at --jobs 4.
//
// With CCSQL_BENCH_OUT set, emits the ccsql-bench/1 metrics document
// (events/sec as a _qps metric) for tools/bench_diff.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.hpp"
#include "core/pool.hpp"
#include "protocol/asura/asura.hpp"
#include "sim/sweep.hpp"

using namespace ccsql;
using namespace ccsql::sim;

int main(int argc, char** argv) {
  std::size_t jobs = core::Pool::default_jobs();
  unsigned seeds = 8;
  std::string assignment = asura::kAssignV5Fix;
  bool dense = true;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      core::Pool::set_default_jobs(jobs == 0 ? 1 : jobs);
    } else if (arg == "--seeds" && i + 1 < argc) {
      seeds = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--assignment" && i + 1 < argc) {
      assignment = argv[++i];
    } else if (arg == "--hashed") {
      dense = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: sim_sweep [--jobs N] [--seeds N] "
                   "[--assignment NAME] [--hashed] [--quiet]\n");
      return 2;
    }
  }
  if (jobs == 0) jobs = 1;

  bench::enable_metrics();
  const ProtocolSpec& spec = bench::asura_spec();
  SweepEngine engine(spec);
  std::vector<SweepRun> grid = default_sweep_grid(assignment, seeds);
  if (!dense) {
    for (SweepRun& cell : grid) cell.config.dense_dispatch = false;
  }
  std::printf("# sim_sweep: %zu runs (%s, %s dispatch), jobs=%zu\n",
              grid.size(), assignment.c_str(), dense ? "dense" : "hashed",
              jobs);

  const SweepResult result = engine.run(grid, jobs);

  int bad = 0;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const SimResult& r = result.runs[i];
    if (r.healthy()) continue;
    ++bad;
    if (!quiet && bad <= 8) {
      std::printf("BAD %s: completed=%d deadlocked=%d stalled=%d steps=%llu\n",
                  grid[i].label().c_str(), r.completed ? 1 : 0,
                  r.deadlocked ? 1 : 0, r.stalled ? 1 : 0,
                  static_cast<unsigned long long>(r.steps));
      for (const auto& e : r.errors) std::printf("  %s\n", e.c_str());
    }
  }

  std::printf(
      "# %zu runs: %d completed, %d deadlocked, %d stalled, %d unhealthy\n",
      result.runs.size(), result.completed, result.deadlocked, result.stalled,
      result.unhealthy);
  std::printf("# events %llu  cycles %llu  events/cycle %.3f\n",
              static_cast<unsigned long long>(result.events),
              static_cast<unsigned long long>(result.merged.cycles),
              result.merged.cycles
                  ? static_cast<double>(result.events) /
                        static_cast<double>(result.merged.cycles)
                  : 0.0);
  std::printf("# wall %.3fs  events/sec %llu\n", result.seconds,
              static_cast<unsigned long long>(result.events_per_sec));
  if (!quiet) {
    std::printf("%s", result.merged.summary().c_str());
  }

  CCSQL_COUNT("sim.sweep_events", result.events);
  CCSQL_COUNT("sim.sweep_events_qps", result.events_per_sec);
  CCSQL_COUNT("sim.sweep_wall_us",
              static_cast<std::uint64_t>(result.seconds * 1e6));
  bench::finish_metrics("sim_sweep");

  return result.all_healthy() && bad == 0 ? 0 : 1;
}
