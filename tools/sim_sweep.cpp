// Broad randomized validation sweep across topologies / capacities / seeds.
#include <iostream>
#include "protocol/asura/asura.hpp"
#include "sim/machine.hpp"
using namespace ccsql;
using namespace ccsql::sim;

int main() {
  auto spec = asura::make_asura();
  int runs = 0, bad = 0, deadlocks = 0;
  for (int quads : {2, 3, 4}) {
    for (int cap : {1, 2, 4}) {
      for (unsigned seed = 1; seed <= 40; ++seed) {
        SimConfig cfg;
        cfg.n_quads = quads;
        cfg.n_addrs = quads * 2;
        cfg.channel_capacity = cap;
        cfg.transactions_per_node = 60;
        cfg.seed = seed;
        Machine m(*spec, spec->assignment(asura::kAssignV5Fix), cfg);
        m.set_memory_latency(seed % 5);
        m.enable_random_workload();
        SimResult r = m.run();
        ++runs;
        if (r.deadlocked) ++deadlocks;
        if (!r.completed || !r.errors.empty()) {
          ++bad;
          std::cout << "BAD quads=" << quads << " cap=" << cap << " seed="
                    << seed << " completed=" << r.completed << " deadlocked="
                    << r.deadlocked << " steps=" << r.steps << "\n";
          for (auto& e : r.errors) std::cout << "  " << e << "\n";
          if (bad > 5) return 1;
        }
      }
    }
  }
  std::cout << runs << " runs, " << bad << " bad, " << deadlocks
            << " deadlocks (V5fix must have none)\n";
  return bad != 0;
}
