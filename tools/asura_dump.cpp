// Quick diagnostic: build ASURA, print per-controller table sizes and run
// the invariant suite.
#include <iostream>
#include "protocol/asura/asura.hpp"
#include "relational/format.hpp"

int main() {
  using namespace ccsql;
  auto spec = asura::make_asura();
  const Catalog& db = spec->database().catalog();
  for (const auto& c : spec->controllers()) {
    const Table& t = db.get(c->name());
    std::cout << c->name() << ": " << t.row_count() << " rows x "
              << t.column_count() << " cols\n";
  }
  std::cout << "messages: " << spec->messages().size() << "\n";
  std::cout << "invariants: " << spec->invariants().size() << "\n";
  int fail = 0;
  for (const auto& inv : spec->invariants()) {
    bool ok = false;
    try {
      ok = db.check_empty(inv.sql);
    } catch (const std::exception& e) {
      std::cout << "ERROR " << inv.name << ": " << e.what() << "\n";
      ++fail;
      continue;
    }
    if (!ok) {
      std::cout << "VIOLATED: " << inv.name << "\n";
      ++fail;
    }
  }
  std::cout << (fail ? "FAILURES: " : "all invariants hold: ")
            << (fail ? std::to_string(fail) : "") << "\n";
  return fail != 0;
}
