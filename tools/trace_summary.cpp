// trace_summary — digest of a JSONL trace written by ccsql --trace.
//
//   trace_summary TRACE.jsonl [--top N]
//
// Prints the spans ranked by exclusive (self) time — inclusive duration
// minus the spans that closed inside it, tracked per worker lane so nested
// executor spans don't double-count — plus inclusive totals, the instant
// counts, and the counter/histogram rows the tracer flushed at finish().
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_mini.hpp"

namespace {

using ccsql::obs::json::JValue;

struct SpanStats {
  std::uint64_t count = 0;
  double total_us = 0;  // inclusive (span duration)
  double self_us = 0;   // exclusive: duration minus enclosed child spans
  double max_us = 0;
};

/// An open span on a worker lane's stack, accumulating the durations of the
/// child spans that close inside it.
struct Frame {
  double child_us = 0;
};

int usage() {
  std::cerr << "usage: trace_summary TRACE.jsonl [--top N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_summary: cannot open " << path << "\n";
    return 1;
  }

  std::map<std::string, SpanStats> spans;     // "cat/name" -> stats
  // One span stack per worker lane (the "worker" field; -1 = off-pool), so
  // exclusive time attributes correctly in parallel traces: E events pop
  // their lane's top frame and charge their duration to the new top.
  std::map<int, std::vector<Frame>> lanes;
  std::map<std::string, std::uint64_t> instants;
  std::vector<std::pair<std::string, std::string>> counters;  // name, text
  std::map<std::string, double> serve;  // serve.* metric values
  std::map<std::string, double> sim;    // sim.* metric values
  std::uint64_t events = 0;
  std::uint64_t bad_lines = 0;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JValue v;
    try {
      v = ccsql::obs::json::parse(line);
    } catch (const std::exception& e) {
      std::cerr << "trace_summary: line " << lineno << ": " << e.what()
                << "\n";
      ++bad_lines;
      continue;
    }
    ++events;
    const std::string ph = v.has("ph") ? v.at("ph").str : "";
    const std::string name = v.has("name") ? v.at("name").str : "?";
    const std::string cat = v.has("cat") ? v.at("cat").str : "?";
    const int worker =
        v.has("worker") ? static_cast<int>(v.at("worker").number) : -1;
    if (ph == "B") {
      lanes[worker].push_back(Frame{});
    } else if (ph == "E") {
      SpanStats& s = spans[cat + "/" + name];
      ++s.count;
      const double dur = v.has("dur") ? v.at("dur").number : 0;
      s.total_us += dur;
      s.max_us = std::max(s.max_us, dur);
      double self = dur;
      auto& stack = lanes[worker];
      if (!stack.empty()) {
        self = std::max(0.0, dur - stack.back().child_us);
        stack.pop_back();
      }
      if (!stack.empty()) stack.back().child_us += dur;
      s.self_us += self;
    } else if (ph == "i") {
      ++instants[cat + "/" + name];
    } else if (ph == "C" && v.has("args")) {
      std::string text;
      for (const auto& [key, val] : v.at("args").obj) {
        if (!text.empty()) text += "  ";
        text += key + "=";
        if (val.kind == JValue::Kind::kNumber) {
          std::ostringstream os;
          os << std::setprecision(6) << val.number;
          text += os.str();
        } else {
          text += val.str;
        }
      }
      counters.emplace_back(name, text);
      const bool is_serve = name.rfind("serve.", 0) == 0;
      const bool is_sim = name.rfind("sim.", 0) == 0;
      if (is_serve || is_sim) {
        const auto& args = v.at("args").obj;
        if (auto it = args.find("value");
            it != args.end() && it->second.kind == JValue::Kind::kNumber) {
          (is_serve ? serve : sim)[name] = it->second.number;
        }
      }
    }
  }

  std::cout << path << ": " << events << " events";
  if (bad_lines > 0) std::cout << " (" << bad_lines << " unparsable)";
  std::cout << "\n";

  if (!spans.empty()) {
    std::vector<std::pair<std::string, SpanStats>> ranked(spans.begin(),
                                                          spans.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second.self_us != b.second.self_us
                 ? a.second.self_us > b.second.self_us
                 : a.second.total_us > b.second.total_us;
    });
    if (ranked.size() > top) ranked.resize(top);
    std::cout << "\ntop spans (by self time):\n";
    for (const auto& [key, s] : ranked) {
      std::cout << "  " << std::left << std::setw(32) << key << std::right
                << std::setw(8) << s.count << " x  self "
                << static_cast<long long>(s.self_us) << " us  total "
                << static_cast<long long>(s.total_us) << " us  max "
                << static_cast<long long>(s.max_us) << " us\n";
    }
  }

  if (!instants.empty()) {
    std::cout << "\ninstants:\n";
    for (const auto& [key, n] : instants) {
      std::cout << "  " << std::left << std::setw(32) << key << std::right
                << std::setw(8) << n << "\n";
    }
  }

  if (!counters.empty()) {
    std::cout << "\ncounters:\n";
    for (const auto& [name, text] : counters) {
      std::cout << "  " << std::left << std::setw(32) << name << " " << text
                << "\n";
    }
  }

  // Serving-layer digest: the plan-cache and snapshot counters condensed to
  // two lines (same shape as the ccsql --stats one-pager).
  if (!serve.empty()) {
    auto sv = [&serve](const char* name) {
      auto it = serve.find(name);
      return it == serve.end() ? 0.0 : it->second;
    };
    const double hits = sv("serve.plan_cache.hits");
    const double misses = sv("serve.plan_cache.misses");
    std::cout << "\nserve:\n  queries=" << std::uint64_t(sv("serve.queries"))
              << " (uncached " << std::uint64_t(sv("serve.uncached_queries"))
              << ")  plan_cache hits=" << std::uint64_t(hits)
              << " misses=" << std::uint64_t(misses);
    if (hits + misses > 0) {
      std::cout << " (hit rate " << std::fixed << std::setprecision(1)
                << hits / (hits + misses) * 100.0 << "%)"
                << std::defaultfloat;
    }
    std::cout << " evictions=" << std::uint64_t(sv("serve.plan_cache.evictions"))
              << " invalidations="
              << std::uint64_t(sv("serve.plan_cache.invalidations"))
              << " entries=" << std::uint64_t(sv("serve.plan_cache.entries"))
              << "\n  snapshots active="
              << std::uint64_t(sv("serve.snapshot.active"))
              << "  writer swaps=" << std::uint64_t(sv("serve.writer_swaps"))
              << "  admission waits="
              << std::uint64_t(sv("serve.admission.waits")) << " ("
              << std::uint64_t(sv("serve.admission.wait_us")) << " us)\n";
  }

  // Simulator digest: run/event totals with the events/sec throughput the
  // scale-out work is measured in, plus the sweep health counters.
  if (!sim.empty()) {
    auto mv = [&sim](const char* name) {
      auto it = sim.find(name);
      return it == sim.end() ? 0.0 : it->second;
    };
    const double run_us = mv("sim.run_us");
    std::cout << "\nsim:\n  runs=" << std::uint64_t(mv("sim.runs"))
              << "  events=" << std::uint64_t(mv("sim.events"));
    if (run_us > 0) {
      std::cout << " (" << std::uint64_t(mv("sim.events") / run_us * 1e6)
                << " events/sec)";
    }
    std::cout << "  cycles=" << std::uint64_t(mv("sim.cycles"))
              << "  deadlocks=" << std::uint64_t(mv("sim.deadlocks"))
              << "  stalled=" << std::uint64_t(mv("sim.stalled_runs"))
              << "  table_misses=" << std::uint64_t(mv("sim.table_misses"))
              << "\n";
    if (mv("sim.sweep_runs") > 0) {
      std::cout << "  sweep runs=" << std::uint64_t(mv("sim.sweep_runs"))
                << " deadlocked=" << std::uint64_t(mv("sim.sweep_deadlocks"))
                << " stalled=" << std::uint64_t(mv("sim.sweep_stalled"))
                << "\n";
    }
  }
  return bad_lines > 0 ? 1 : 0;
}
