// Diagnostic: run deadlock analysis on ASURA under all three assignments.
#include <iostream>
#include "checks/vcg.hpp"
#include "protocol/asura/asura.hpp"

int main() {
  using namespace ccsql;
  auto spec = asura::make_asura();
  const Database& db = spec->database();
  std::vector<ControllerTableRef> tables;
  for (const auto& c : spec->controllers()) {
    tables.push_back(ControllerTableRef::from_spec(*c, db.get(c->name())));
  }
  for (const char* a : {asura::kAssignV4, asura::kAssignV5,
                        asura::kAssignV5Fix}) {
    std::cout << "=== assignment " << a << " ===\n";
    DeadlockAnalysis analysis(tables, spec->assignment(a));
    std::cout << analysis.report() << "\n";
  }
  return 0;
}
