#include <iostream>
#include <memory>
#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "sim/machine.hpp"
using namespace ccsql;
using namespace ccsql::sim;

int main(int argc, char** argv) {
  auto spec = asura::make_asura();
  int txns = argc > 1 ? atoi(argv[1]) : 4;
  unsigned seed0 = argc > 2 ? (unsigned)atoi(argv[2]) : 1;
  bool trace = argc > 3;
  if (trace) {
    // Verbose mode: stream per-event instants to stdout via the obs layer.
    obs::Tracer::global().set_sink(std::make_unique<obs::TextSink>(std::cout));
  }
  for (unsigned seed = seed0; seed < seed0 + (trace ? 1u : 400u); ++seed) {
    SimConfig cfg;
    cfg.n_quads = 3;
    cfg.n_addrs = 2;
    cfg.channel_capacity = 4;
    cfg.transactions_per_node = txns;
    cfg.seed = seed;
    Machine m(*spec, spec->assignment(asura::kAssignV5Fix), cfg);
    m.set_memory_latency(2);
    m.enable_random_workload();
    SimResult r = m.run();
    if (!r.errors.empty() || !r.completed) {
      std::cout << "seed " << seed << ": completed=" << r.completed
                << " steps=" << r.steps << "\n";
      for (auto& e : r.errors) std::cout << "  " << e << "\n";
      if (!trace) break;
    }
  }
  obs::Tracer::global().finish();
  return 0;
}
