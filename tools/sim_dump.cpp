// Diagnostic: Figure 4 scenario under V5 (must deadlock) and V5fix (must
// complete), then a random workload under V5fix.
#include <iostream>
#include <memory>
#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "sim/machine.hpp"

using namespace ccsql;
using namespace ccsql::sim;

// Figure 4: line A modified at the remote node (co-located with home, the
// L != H = R placement), line B modified at another local node.  The local
// nodes concurrently issue wb(B) and readex(A); with one-deep channels the
// idone occupies VC2 while the forwarded wb occupies VC4.
SimResult fig4(const ProtocolSpec& spec, const char* assignment,
               bool trace = false) {
  if (trace) {
    // Verbose mode: stream per-event instants to stdout via the obs layer.
    obs::Tracer::global().set_sink(std::make_unique<obs::TextSink>(std::cout));
  }
  SimConfig cfg;
  cfg.n_quads = 3;
  cfg.n_addrs = 6;  // homes: addr % 3; quad 2 owns addrs 2 and 5
  cfg.channel_capacity = 1;
  Machine m(spec, spec.assignment(assignment), cfg);
  m.set_memory_latency(16);
  m.set_line(2, "MESI", {2});  // A: home quad 2, modified at quad 2
  m.set_line(5, "MESI", {0});  // B: home quad 2, modified at quad 0
  m.script(0, "pwb", 5);       // wb(B)
  m.script(1, "pwr", 2);       // readex(A)
  return m.run();
}

int main() {
  auto spec = asura::make_asura();
  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    SimResult r = fig4(*spec, a);
    std::cout << "fig4 under " << a << ": completed=" << r.completed
              << " deadlocked=" << r.deadlocked << " steps=" << r.steps
              << " done=" << r.transactions_done << "\n";
    if (r.deadlocked) std::cout << r.deadlock_report;
    for (const auto& e : r.errors) std::cout << "  error: " << e << "\n";
  }
  {
    SimConfig cfg;
    cfg.n_quads = 4;
    cfg.n_addrs = 8;
    cfg.channel_capacity = 4;
    cfg.transactions_per_node = 100;
    cfg.seed = 7;
    Machine m(*spec, spec->assignment(asura::kAssignV5Fix), cfg);
    m.set_memory_latency(2);
    m.enable_random_workload();
    SimResult r = m.run();
    std::cout << "random V5fix: completed=" << r.completed
              << " deadlocked=" << r.deadlocked << " steps=" << r.steps
              << " done=" << r.transactions_done
              << " errors=" << r.errors.size() << "\n";
    for (const auto& e : r.errors) std::cout << "  error: " << e << "\n";
  }
  return 0;
}
